// Tests for the two-phase sufficiency verifier, the monotonicity/linearity
// property checkers (Defs 1 and 2), and linear-bound conservativeness.
#include <gtest/gtest.h>

#include "analysis/buffer_sizing.hpp"
#include "analysis/linear_bounds.hpp"
#include "models/fig1.hpp"
#include "models/synthetic.hpp"
#include "sim/property_checks.hpp"
#include "sim/verify.hpp"
#include "util/error.hpp"

namespace vrdf {
namespace {

using analysis::GraphAnalysis;
using analysis::ThroughputConstraint;
using dataflow::RateSet;
using models::Fig1Vrdf;

const Duration kTau = milliseconds(Rational(3));

Fig1Vrdf sized_fig1() {
  Fig1Vrdf model = models::make_fig1_vrdf(kTau, kTau, kTau);
  const GraphAnalysis analysis =
      analysis::compute_buffer_capacities(model.graph, model.constraint);
  analysis::apply_capacities(model.graph, analysis);
  return model;
}

TEST(Verify, Fig1ComputedCapacityPassesAllSequences) {
  Fig1Vrdf model = sized_fig1();
  sim::VerifyOptions options;
  options.observe_firings = 2000;
  for (const auto& make_source :
       {+[]() { return sim::constant_source(2); },
        +[]() { return sim::constant_source(3); },
        +[]() { return sim::cyclic_source({2, 3}); },
        +[]() { return sim::uniform_random_source(RateSet::of({2, 3}), 99); }}) {
    const sim::VerifyResult result = sim::verify_throughput(
        model.graph, model.constraint,
        [&](sim::Simulator& s) {
          s.set_quantum_source(model.vb, model.buffer.data, make_source());
        },
        options);
    EXPECT_TRUE(result.ok) << result.detail;
  }
}

TEST(Verify, OneBelowPerSequenceMinimumFails) {
  // Find the exact per-sequence minimum for the alternating sequence via
  // simulation, then show one token less starves the periodic consumer —
  // the verifier must be able to tell the difference.
  const auto feasible = [&](std::int64_t capacity) {
    Fig1Vrdf model = models::make_fig1_vrdf(kTau, kTau, kTau);
    model.graph.set_initial_tokens(model.buffer.space, capacity);
    sim::VerifyOptions options;
    options.observe_firings = 2000;
    return sim::verify_throughput(
               model.graph, model.constraint,
               [&](sim::Simulator& s) {
                 s.set_quantum_source(model.vb, model.buffer.data,
                                      sim::cyclic_source({2, 3}));
               },
               options)
        .ok;
  };
  std::int64_t minimum = 3;
  while (!feasible(minimum)) {
    ++minimum;
    ASSERT_LE(minimum, 11);  // the analysis bound must suffice
  }
  EXPECT_GT(minimum, 3);         // deadlock-free floor is not enough
  EXPECT_FALSE(feasible(minimum - 1));
  EXPECT_TRUE(feasible(11));     // the analysis capacity always passes
}

TEST(Verify, ReportsDeadlockInPhaseOne) {
  Fig1Vrdf model = models::make_fig1_vrdf(kTau, kTau, kTau);
  model.graph.set_initial_tokens(model.buffer.space, 2);  // < π̂ = 3
  const sim::VerifyResult result =
      sim::verify_throughput(model.graph, model.constraint);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.detail.find("deadlock"), std::string::npos);
}

TEST(Verify, MeasureSelfTimedThroughput) {
  Fig1Vrdf model = sized_fig1();
  const Rational throughput = sim::measure_self_timed_throughput(
      model.graph, model.vb, 500, [&](sim::Simulator& s) {
        s.set_quantum_source(model.vb, model.buffer.data,
                             sim::constant_source(3));
      });
  // Self-timed must be at least the required rate 1/τ.
  EXPECT_GE(throughput, kTau.seconds().reciprocal());
}

TEST(Verify, ThroughputZeroOnDeadlock) {
  models::Fig1Vrdf model = models::make_fig1_vrdf(kTau, kTau, kTau);
  model.graph.set_initial_tokens(model.buffer.space, 1);
  EXPECT_EQ(sim::measure_self_timed_throughput(model.graph, model.vb, 10),
            Rational(0));
}

class TemporalProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TemporalProperties, RandomChainsAreMonotonicAndLinear) {
  models::RandomChainSpec spec;
  spec.seed = GetParam();
  spec.length = 4;
  spec.response_fraction = Rational(1, 2);
  models::SyntheticChain chain = models::make_random_chain(spec);
  const GraphAnalysis analysis = analysis::compute_buffer_capacities(
      chain.graph, chain.constraint);
  ASSERT_TRUE(analysis.admissible);
  analysis::apply_capacities(chain.graph, analysis);

  // Delay firing 3 of the middle actor by half a period.
  const auto report = sim::check_monotonic_linear(
      chain.graph, analysis.actors_in_order[1], 3,
      chain.constraint.period * Rational(1, 2),
      TimePoint() + chain.constraint.period * Rational(200), {}, GetParam());
  EXPECT_TRUE(report.monotonic) << report.detail;
  EXPECT_TRUE(report.linear) << report.detail;
}

INSTANTIATE_TEST_SUITE_P(Seeds, TemporalProperties,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST_P(TemporalProperties, RandomCyclicGraphsAreMonotonicAndLinear) {
  models::RandomCyclicSpec spec;
  spec.base.seed = GetParam();
  spec.base.response_fraction = Rational(1, 2);
  models::SyntheticChain model = models::make_random_cyclic(spec);
  const GraphAnalysis analysis =
      analysis::compute_buffer_capacities(model.graph, model.constraint);
  ASSERT_TRUE(analysis.admissible);
  analysis::apply_capacities(model.graph, analysis);

  // Delay firing 3 of the data source by half a period; back-edges must
  // propagate the delay without amplifying it (Defs 1 and 2 hold for
  // cyclic graphs too — the sufficiency argument relies on it).
  const auto report = sim::check_monotonic_linear(
      model.graph, analysis.actors_in_order.front(), 3,
      model.constraint.period * Rational(1, 2),
      TimePoint() + model.constraint.period * Rational(200), {}, GetParam());
  EXPECT_TRUE(report.monotonic) << report.detail;
  EXPECT_TRUE(report.linear) << report.detail;
}

TEST_P(TemporalProperties, RandomInteriorPinnedChainsAreMonotonicAndLinear) {
  models::RandomInteriorPinSpec spec;
  spec.seed = GetParam();
  spec.response_fraction = Rational(1, 2);
  models::SyntheticChain model = models::make_random_interior_pinned(spec);
  const GraphAnalysis analysis =
      analysis::compute_buffer_capacities(model.graph, model.constraint);
  ASSERT_TRUE(analysis.admissible);
  analysis::apply_capacities(model.graph, analysis);

  // Delay an actor upstream of the pin: the delay must reach the pin's
  // downstream cone monotonically and stay bounded by the injected Δ.
  const auto report = sim::check_monotonic_linear(
      model.graph, analysis.actors_in_order.front(), 3,
      model.constraint.period * Rational(1, 2),
      TimePoint() + model.constraint.period * Rational(200), {}, GetParam());
  EXPECT_TRUE(report.monotonic) << report.detail;
  EXPECT_TRUE(report.linear) << report.detail;
}

TEST_P(TemporalProperties, FaultedCyclicLatenessIsMonotoneAndLinearInDelta) {
  models::RandomCyclicSpec spec;
  spec.base.seed = GetParam();
  spec.base.response_fraction = Rational(1, 2);
  models::SyntheticChain model = models::make_random_cyclic(spec);
  const GraphAnalysis analysis =
      analysis::compute_buffer_capacities(model.graph, model.constraint);
  ASSERT_TRUE(analysis.admissible);
  analysis::apply_capacities(model.graph, analysis);

  // Injected Δ via the fault layer instead of a release delay: a
  // transient stall of Δ vs 2Δ on the source.  Start times must move
  // monotonically and by at most the extra Δ.
  const Duration delta = model.constraint.period * Rational(1, 2);
  const TimePoint horizon =
      TimePoint() + model.constraint.period * Rational(200);
  sim::FaultPlan light;
  light.transient_stall(analysis.actors_in_order.front(), 3, delta);
  sim::FaultPlan heavy;
  heavy.transient_stall(analysis.actors_in_order.front(), 3,
                        delta * Rational(2));
  const auto report = sim::check_fault_monotonic_linear(
      model.graph, light, heavy, delta, horizon, {}, GetParam());
  EXPECT_TRUE(report.monotonic) << report.detail;
  EXPECT_TRUE(report.linear) << report.detail;
}

TEST_P(TemporalProperties, FaultedInteriorPinLatenessIsMonotoneAndLinear) {
  models::RandomInteriorPinSpec spec;
  spec.seed = GetParam();
  spec.response_fraction = Rational(1, 2);
  models::SyntheticChain model = models::make_random_interior_pinned(spec);
  const GraphAnalysis analysis =
      analysis::compute_buffer_capacities(model.graph, model.constraint);
  ASSERT_TRUE(analysis.admissible);
  analysis::apply_capacities(model.graph, analysis);

  const Duration delta = model.constraint.period * Rational(1, 2);
  const TimePoint horizon =
      TimePoint() + model.constraint.period * Rational(200);
  sim::FaultPlan none;
  sim::FaultPlan stalled;
  stalled.transient_stall(analysis.actors_in_order.front(), 3, delta);
  const auto report = sim::check_fault_monotonic_linear(
      model.graph, none, stalled, delta, horizon, {}, GetParam());
  EXPECT_TRUE(report.monotonic) << report.detail;
  EXPECT_TRUE(report.linear) << report.detail;
}

TEST(LinearBounds, EvaluationIsAffine) {
  const analysis::LinearBound bound(milliseconds(Rational(5)),
                                    milliseconds(Rational(2)));
  EXPECT_EQ(bound.at(1), TimePoint(Rational(7, 1000)));
  EXPECT_EQ(bound.at(4), TimePoint(Rational(13, 1000)));
  EXPECT_THROW((void)bound.at(0), ContractError);
}

TEST(LinearBounds, PairBoundsSatisfyEquations) {
  const models::Fig1Vrdf model = models::make_fig1_vrdf(kTau, kTau, kTau);
  const GraphAnalysis analysis =
      analysis::compute_buffer_capacities(model.graph, model.constraint);
  ASSERT_TRUE(analysis.admissible);
  const analysis::PairBounds bounds =
      analysis::derive_pair_bounds(analysis.pairs[0], TimePoint());
  // Eq (1): α̂p(data) − α̌c(space) = Δ1.
  EXPECT_EQ(bounds.data_production_upper.offset() -
                bounds.space_consumption_lower.offset(),
            analysis.pairs[0].delta_producer);
  // Eq (2): α̂p(space) − α̌c(data) = Δ2.
  EXPECT_EQ(bounds.space_production_upper.offset() -
                bounds.data_consumption_lower.offset(),
            analysis.pairs[0].delta_consumer);
  // Eq (3)+(4): token distance equals the raw token count.
  EXPECT_EQ(analysis::bound_token_distance(bounds), analysis.pairs[0].raw_tokens);
}

TEST(LinearBounds, JustConservativeSchedulesAreConservative) {
  const models::Fig1Vrdf model = models::make_fig1_vrdf(kTau, kTau, kTau);
  const GraphAnalysis analysis =
      analysis::compute_buffer_capacities(model.graph, model.constraint);
  const analysis::PairBounds bounds =
      analysis::derive_pair_bounds(analysis.pairs[0], TimePoint());

  const std::vector<std::int64_t> producer_quanta{3, 3, 3, 3};
  const auto productions = analysis::just_conservative_producer_schedule(
      bounds.data_production_upper, producer_quanta);
  EXPECT_TRUE(analysis::production_conservative(bounds.data_production_upper,
                                                productions));

  const std::vector<std::int64_t> consumer_quanta{2, 3, 2, 2, 3};
  const auto consumptions = analysis::just_conservative_consumer_schedule(
      bounds.data_consumption_lower, consumer_quanta);
  EXPECT_TRUE(analysis::consumption_conservative(bounds.data_consumption_lower,
                                                 consumptions));
}

TEST(LinearBounds, ViolationsAreDetected) {
  const analysis::LinearBound bound(Duration(), milliseconds(Rational(1)));
  // Token 5 produced after its bound (5 ms).
  const std::vector<analysis::TransferEvent> late{
      {5, 5, TimePoint(Rational(6, 1000))}};
  EXPECT_FALSE(analysis::production_conservative(bound, late));
  // Token 5 consumed before its bound.
  const std::vector<analysis::TransferEvent> early{
      {5, 5, TimePoint(Rational(4, 1000))}};
  EXPECT_FALSE(analysis::consumption_conservative(bound, early));
  // Zero-count events are ignored by both directions.
  const std::vector<analysis::TransferEvent> zero{{5, 0, TimePoint()}};
  EXPECT_TRUE(analysis::production_conservative(bound, zero));
  EXPECT_TRUE(analysis::consumption_conservative(bound, zero));
}

TEST(LinearBounds, PeriodicMaxRateRunMatchesBoundsExactly) {
  // Drive Fig 1 exactly as the bound construction assumes: the consumer
  // strictly periodic at period τ with always-max quanta.  Anchoring the
  // pair bounds at (first consumer start − τ), the simulation must
  // satisfy, with equality at the binding tokens:
  //  * the lower bound on data consumption times (Sec 4.2 construction),
  //  * the upper bound on space production times (Eq 2),
  //  * the upper bound on data production times (producer self-timed is
  //    never later than the witness schedule — monotonicity).
  // Witness anchoring: the producer fires self-timed from t = 0, so its
  // first firing finishes at ρ(va) and the data production bound must pass
  // through (token 1, ρ(va)): anchor A = ρ(va) − s.  The consumer is then
  // pinned one period after the anchor (o = A + γ̂·s = A + τ), the offset
  // at which its lower consumption bound is met with equality.
  models::Fig1Vrdf model = sized_fig1();
  const GraphAnalysis analysis =
      analysis::compute_buffer_capacities(model.graph, model.constraint);
  const Duration s = analysis.pairs[0].bound_rate;
  const TimePoint anchor = TimePoint() + (kTau - s);  // ρ(va) − s
  const TimePoint consumer_offset = anchor + kTau;    // A + 3s

  sim::Simulator periodic(model.graph);
  periodic.set_quantum_source(model.vb, model.buffer.data,
                              sim::constant_source(3));
  periodic.set_default_sources(1);
  periodic.set_actor_mode(
      model.vb, sim::ActorMode::strictly_periodic(consumer_offset, kTau));
  periodic.record_transfers(model.buffer.data);
  periodic.record_transfers(model.buffer.space);
  sim::StopCondition stop;
  stop.firing_target = sim::StopCondition::FiringTarget{model.vb, 300};
  const sim::RunResult run = periodic.run(stop);
  ASSERT_EQ(run.reason, sim::StopReason::ReachedFiringTarget);
  ASSERT_TRUE(run.starvations.empty());

  const analysis::PairBounds bounds =
      analysis::derive_pair_bounds(analysis.pairs[0], anchor);

  const auto convert = [](const std::vector<sim::EdgeTransfer>& events) {
    std::vector<analysis::TransferEvent> out;
    for (const auto& e : events) {
      out.push_back(analysis::TransferEvent{e.cumulative, e.count, e.time});
    }
    return out;
  };
  // All four bounds of the pair hold on the recorded schedule.
  EXPECT_TRUE(analysis::consumption_conservative(
      bounds.data_consumption_lower,
      convert(periodic.consumption_events(model.buffer.data))));
  EXPECT_TRUE(analysis::production_conservative(
      bounds.data_production_upper,
      convert(periodic.production_events(model.buffer.data))));
  EXPECT_TRUE(analysis::production_conservative(
      bounds.space_production_upper,
      convert(periodic.production_events(model.buffer.space))));
  EXPECT_TRUE(analysis::consumption_conservative(
      bounds.space_consumption_lower,
      convert(periodic.consumption_events(model.buffer.space))));
}

}  // namespace
}  // namespace vrdf
