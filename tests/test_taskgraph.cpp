// Unit tests for the task-graph model and the Sec 3.3 VRDF construction.
#include <gtest/gtest.h>

#include "dataflow/validation.hpp"
#include "taskgraph/task_graph.hpp"
#include "util/error.hpp"

namespace vrdf::taskgraph {
namespace {

using dataflow::RateSet;

const Duration kKappa = milliseconds(Rational(2));

TaskGraph three_task_chain() {
  TaskGraph g;
  const TaskId a = g.add_task("a", kKappa);
  const TaskId b = g.add_task("b", kKappa);
  const TaskId c = g.add_task("c", kKappa);
  (void)g.add_buffer(a, b, RateSet::singleton(3), RateSet::of({2, 3}));
  (void)g.add_buffer(b, c, RateSet::singleton(1), RateSet::singleton(4));
  return g;
}

TEST(TaskGraph, BasicConstruction) {
  const TaskGraph g = three_task_chain();
  EXPECT_EQ(g.task_count(), 3u);
  EXPECT_EQ(g.buffer_count(), 2u);
  EXPECT_EQ(g.task(TaskId(0)).name, "a");
  EXPECT_EQ(g.buffer(BufferId(0)).production, RateSet::singleton(3));
}

TEST(TaskGraph, RejectsBadInputs) {
  TaskGraph g;
  const TaskId a = g.add_task("a", kKappa);
  EXPECT_THROW(g.add_task("a", kKappa), ContractError);
  EXPECT_THROW(g.add_task("", kKappa), ContractError);
  EXPECT_THROW(g.add_task("b", Duration()), ContractError);
  EXPECT_THROW(
      g.add_buffer(a, a, RateSet::singleton(1), RateSet::singleton(1)),
      ContractError);
}

TEST(TaskGraph, FindTask) {
  const TaskGraph g = three_task_chain();
  EXPECT_EQ(g.find_task("b"), TaskId(1));
  EXPECT_FALSE(g.find_task("zz").has_value());
}

TEST(TaskGraph, CapacityAssignment) {
  TaskGraph g = three_task_chain();
  EXPECT_FALSE(g.buffer(BufferId(0)).capacity.has_value());
  g.set_capacity(BufferId(0), 7);
  EXPECT_EQ(g.buffer(BufferId(0)).capacity, 7);
  EXPECT_THROW(g.set_capacity(BufferId(0), 0), ContractError);
}

TEST(TaskGraph, ChainRecognition) {
  const TaskGraph g = three_task_chain();
  EXPECT_TRUE(g.is_chain());
  const auto order = g.chain_order();
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(order->tasks, (std::vector<TaskId>{TaskId(0), TaskId(1), TaskId(2)}));
  EXPECT_EQ(order->buffers_in_order,
            (std::vector<BufferId>{BufferId(0), BufferId(1)}));
}

TEST(TaskGraph, NonChainDetected) {
  TaskGraph g;
  const TaskId a = g.add_task("a", kKappa);
  const TaskId b = g.add_task("b", kKappa);
  const TaskId c = g.add_task("c", kKappa);
  (void)g.add_buffer(a, b, RateSet::singleton(1), RateSet::singleton(1));
  (void)g.add_buffer(a, c, RateSet::singleton(1), RateSet::singleton(1));
  EXPECT_FALSE(g.is_chain());
}

TEST(TaskGraph, TwoBuffersBetweenSameTasksIsNotAChain) {
  // Sec 3.1: at most one input and one output buffer per task.
  TaskGraph g;
  const TaskId a = g.add_task("a", kKappa);
  const TaskId b = g.add_task("b", kKappa);
  (void)g.add_buffer(a, b, RateSet::singleton(1), RateSet::singleton(1));
  (void)g.add_buffer(a, b, RateSet::singleton(2), RateSet::singleton(2));
  EXPECT_FALSE(g.is_chain());
}

TEST(Construction, ActorsMirrorTasks) {
  TaskGraph g = three_task_chain();
  const VrdfConstruction built = g.to_vrdf();
  ASSERT_EQ(built.actor_of_task.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    const auto task_id = TaskId(static_cast<TaskId::underlying_type>(i));
    const dataflow::Actor& actor =
        built.graph.actor(built.actor_of_task[i]);
    EXPECT_EQ(actor.name, g.task(task_id).name);
    // ρ(v) = κ(w).
    EXPECT_EQ(actor.response_time, g.task(task_id).worst_case_response_time);
  }
}

TEST(Construction, BuffersBecomeAntiParallelEdgePairs) {
  TaskGraph g = three_task_chain();
  g.set_capacity(BufferId(0), 9);
  const VrdfConstruction built = g.to_vrdf();
  ASSERT_EQ(built.edges_of_buffer.size(), 2u);

  const dataflow::Edge& data = built.graph.edge(built.edges_of_buffer[0].data);
  const dataflow::Edge& space = built.graph.edge(built.edges_of_buffer[0].space);
  // π(e_ab) = ξ(b), γ(e_ab) = λ(b).
  EXPECT_EQ(data.production, RateSet::singleton(3));
  EXPECT_EQ(data.consumption, RateSet::of({2, 3}));
  // π(e_ba) = λ(b), γ(e_ba) = ξ(b); δ(e_ba) = ζ(b).
  EXPECT_EQ(space.production, RateSet::of({2, 3}));
  EXPECT_EQ(space.consumption, RateSet::singleton(3));
  EXPECT_EQ(space.initial_tokens, 9);
  // Data edges start empty (buffers are initially empty, Sec 3.1).
  EXPECT_EQ(data.initial_tokens, 0);
  // Unset capacity maps to zero initial tokens.
  EXPECT_EQ(built.graph.edge(built.edges_of_buffer[1].space).initial_tokens, 0);
}

TEST(Construction, ResultIsStronglyConsistentChain) {
  TaskGraph g = three_task_chain();
  const VrdfConstruction built = g.to_vrdf();
  const dataflow::ValidationReport report =
      dataflow::validate_chain_model(built.graph);
  EXPECT_TRUE(report.ok()) << report.summary();
  const auto view = built.graph.chain_view();
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->actors.size(), 3u);
}

}  // namespace
}  // namespace vrdf::taskgraph
