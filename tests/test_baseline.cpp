// Tests for the baselines: the traditional [10] closed-form bound and the
// exact minimal capacity search, including the Fig 1 minimum capacities
// (3 for n ≡ 3, 4 for n ≡ 2) and the tight SRC→DAC value 882.
#include <gtest/gtest.h>

#include "analysis/buffer_sizing.hpp"
#include "baseline/exact_minimal.hpp"
#include "baseline/traditional.hpp"
#include "models/fig1.hpp"
#include "models/mp3.hpp"
#include "util/error.hpp"

namespace vrdf::baseline {
namespace {

using dataflow::RateSet;

const Duration kTau = milliseconds(Rational(3));

TEST(Traditional, SriramFormula) {
  EXPECT_EQ(sriram_pair_capacity(2048, 960), 5888);
  EXPECT_EQ(sriram_pair_capacity(1152, 480), 3072);
  EXPECT_EQ(sriram_pair_capacity(441, 1), 882);
  EXPECT_EQ(sriram_pair_capacity(1, 1), 2);
  EXPECT_EQ(sriram_pair_capacity(3, 3), 6);
  EXPECT_THROW((void)sriram_pair_capacity(0, 1), ContractError);
}

TEST(Traditional, ChainCapacitiesUseMaxQuanta) {
  const models::Fig1Vrdf model = models::make_fig1_vrdf(kTau, kTau, kTau);
  const TraditionalResult result = traditional_chain_capacities(model.graph);
  ASSERT_TRUE(result.ok);
  ASSERT_EQ(result.pairs.size(), 1u);
  EXPECT_EQ(result.pairs[0].production, 3);
  EXPECT_EQ(result.pairs[0].consumption, 3);  // max of {2,3}
  EXPECT_EQ(result.pairs[0].capacity, 6);     // 2·(3+3−3)
}

TEST(Traditional, RejectsNonChain) {
  dataflow::VrdfGraph g;
  (void)g.add_actor("only", kTau);
  const TraditionalResult result = traditional_chain_capacities(g);
  // Single actor *is* a chain with no buffers.
  ASSERT_TRUE(result.ok);
  EXPECT_TRUE(result.pairs.empty());

  dataflow::VrdfGraph bad;
  const auto a = bad.add_actor("a", kTau);
  const auto b = bad.add_actor("b", kTau);
  (void)bad.add_edge(a, b, RateSet::singleton(1), RateSet::singleton(1));
  EXPECT_FALSE(traditional_chain_capacities(bad).ok);
}

TEST(ExactMinimal, Fig1ThroughputMinimumIsDoubleBufferForMaxQuantum) {
  // NOTE: this is the *throughput* minimum (strictly periodic consumer at
  // period τ with ρ(va) = ρ(vb) = τ), not the deadlock-freedom minimum the
  // introduction quotes (3).  With tight response times the producer must
  // fill batch k+1 while the consumer drains batch k, so the minimum is a
  // double buffer: 2·3 = 6.  (The deadlock-freedom claims 3-vs-4 are
  // covered by Simulator.Fig1MinimalCapacities.)
  PairSearchSpec spec;
  spec.production = RateSet::singleton(3);
  spec.consumption = RateSet::of({2, 3});
  spec.producer_response = kTau;
  spec.consumer_response = kTau;
  spec.consumer_period = kTau;
  spec.consumer_sequence = [] { return sim::constant_source(3); };
  const auto minimum = exact_minimal_pair_capacity(spec, 16);
  ASSERT_TRUE(minimum.has_value());
  EXPECT_EQ(*minimum, 6);
}

TEST(ExactMinimal, Fig1PerSequenceMinimaNeverExceedTheAnalysisBound) {
  // The analysis capacity (11 for this pair) covers *every* sequence; the
  // per-sequence minima are cheaper, and the all-min sequence needs more
  // than the all-max one relative to its drain rate (the Fig 1 effect:
  // min-quantum consumption throttles the producer via back-pressure).
  const std::int64_t analysis_capacity = 11;
  std::vector<std::int64_t> minima;
  for (const auto& make :
       {std::function<std::unique_ptr<sim::QuantumSource>()>(
            [] { return sim::constant_source(3); }),
        std::function<std::unique_ptr<sim::QuantumSource>()>(
            [] { return sim::constant_source(2); }),
        std::function<std::unique_ptr<sim::QuantumSource>()>(
            [] { return sim::cyclic_source({2, 3}); })}) {
    PairSearchSpec spec;
    spec.production = RateSet::singleton(3);
    spec.consumption = RateSet::of({2, 3});
    spec.producer_response = kTau;
    spec.consumer_response = kTau;
    spec.consumer_period = kTau;
    spec.consumer_sequence = make;
    const auto minimum = exact_minimal_pair_capacity(spec, analysis_capacity);
    ASSERT_TRUE(minimum.has_value());
    EXPECT_LE(*minimum, analysis_capacity);
    minima.push_back(*minimum);
  }
  // All sequences admit the analysis bound; the mixed sequence needs at
  // least as much as the best constant one.
  EXPECT_GE(minima[2], std::min(minima[0], minima[1]));
}

TEST(ExactMinimal, SrcDacPairMinimumMatchesPaperValue) {
  // The SRC→DAC pair of the MP3 app: fully static, consumer strictly
  // periodic at 1/44100 s.  The true minimum is the paper's 882.
  PairSearchSpec spec;
  spec.production = RateSet::singleton(441);
  spec.consumption = RateSet::singleton(1);
  spec.producer_response = milliseconds(Rational(10));
  spec.consumer_response = period_of_hz(Rational(44100));
  spec.consumer_period = period_of_hz(Rational(44100));
  spec.observe_firings = 4096;
  const auto minimum = exact_minimal_pair_capacity(spec, 1024);
  ASSERT_TRUE(minimum.has_value());
  EXPECT_EQ(*minimum, 882);
}

TEST(ExactMinimal, NulloptWhenUpperBoundInfeasible) {
  PairSearchSpec spec;
  spec.production = RateSet::singleton(3);
  spec.consumption = RateSet::singleton(3);
  spec.producer_response = kTau * Rational(10);  // far too slow
  spec.consumer_response = kTau;
  spec.consumer_period = kTau;
  EXPECT_FALSE(exact_minimal_pair_capacity(spec, 8).has_value());
}

TEST(ExactMinimal, NeverExceedsAnalysisCapacity) {
  // The analysis capacity is sufficient, so the search (with the analysis
  // value as upper bound) must succeed at or below it — per sequence.
  const models::Fig1Vrdf model = models::make_fig1_vrdf(kTau, kTau, kTau);
  const analysis::GraphAnalysis chain_analysis =
      analysis::compute_buffer_capacities(model.graph, model.constraint);
  ASSERT_TRUE(chain_analysis.admissible);
  const std::int64_t analysis_capacity = chain_analysis.pairs[0].capacity;

  for (const std::int64_t n : {2LL, 3LL}) {
    PairSearchSpec spec;
    spec.production = RateSet::singleton(3);
    spec.consumption = RateSet::of({2, 3});
    spec.producer_response = kTau;
    spec.consumer_response = kTau;
    spec.consumer_period = kTau;
    spec.consumer_sequence = [n] { return sim::constant_source(n); };
    const auto minimum = exact_minimal_pair_capacity(spec, analysis_capacity);
    ASSERT_TRUE(minimum.has_value()) << "n=" << n;
    EXPECT_LE(*minimum, analysis_capacity);
  }
}

}  // namespace
}  // namespace vrdf::baseline
