// Cyclic-topology tests: back-edge classification in the buffer view,
// validate_cyclic_model diagnostics (token-free cycles, variable rates on
// cycle edges), pacing over the skeleton with back-edge flow-consistency
// checks, capacities covering initial tokens plus alignment slack, the
// max-cycle-ratio period bound, deadlock minima with cycles, io
// rendering, and end-to-end sufficiency of ≥ 50 random cyclic graphs
// under the two-phase simulation harness.
#include <gtest/gtest.h>

#include "analysis/buffer_sizing.hpp"
#include "analysis/deadlock.hpp"
#include "analysis/pacing.hpp"
#include "analysis/period.hpp"
#include "baseline/traditional.hpp"
#include "dataflow/validation.hpp"
#include "io/dot.hpp"
#include "io/report.hpp"
#include "io/text_format.hpp"
#include "models/synthetic.hpp"
#include "sim/fleet.hpp"
#include "sim/verify.hpp"
#include "util/error.hpp"

namespace vrdf::analysis {
namespace {

using dataflow::ActorId;
using dataflow::BufferEdges;
using dataflow::RateSet;
using dataflow::VrdfGraph;

const Duration kTau = milliseconds(Rational(40));

// --------------------------------------------------------- classification

TEST(CyclicBufferView, ClassifiesTokenedBackEdges) {
  const models::FeedbackPipeline app = models::make_feedback_pipeline();
  const auto view = app.graph.buffer_view();
  ASSERT_TRUE(view.has_value());
  EXPECT_TRUE(view->is_cyclic);
  EXPECT_FALSE(view->is_chain);
  ASSERT_EQ(view->feedback_buffers.size(), 1u);
  const std::size_t fpos = view->feedback_buffers[0];
  EXPECT_EQ(view->buffers[fpos].data, app.dec_rctl.data);
  EXPECT_TRUE(view->is_feedback[fpos]);
  // Every edge of the loop src→dec→rctl→src is on the directed cycle;
  // the dec→present bridge is not.
  for (std::size_t pos = 0; pos < view->buffers.size(); ++pos) {
    const dataflow::Edge& data = app.graph.edge(view->buffers[pos].data);
    const bool bridge = data.target == app.present;
    EXPECT_EQ(view->on_cycle[pos], !bridge) << "buffer " << pos;
  }
  // Skeleton-only degrees: present is the unique data sink even though
  // it is downstream of a loop, and rctl (paced through rctl→src) is a
  // skeleton source.
  EXPECT_EQ(view->data_sinks, (std::vector<ActorId>{app.present}));
  EXPECT_EQ(view->data_sources, (std::vector<ActorId>{app.rctl}));
}

TEST(CyclicBufferView, TokenFreeCycleHasNoView) {
  VrdfGraph g;
  const Duration rho = seconds(Rational(1));
  const ActorId a = g.add_actor("a", rho);
  const ActorId b = g.add_actor("b", rho);
  (void)g.add_buffer(a, b, RateSet::singleton(1), RateSet::singleton(1));
  (void)g.add_buffer(b, a, RateSet::singleton(1), RateSet::singleton(1));
  EXPECT_FALSE(g.buffer_view().has_value());
  // One initial token on the back-edge makes the same topology viewable.
  VrdfGraph h;
  const ActorId c = h.add_actor("c", rho);
  const ActorId d = h.add_actor("d", rho);
  (void)h.add_buffer(c, d, RateSet::singleton(1), RateSet::singleton(1));
  (void)h.add_buffer(d, c, RateSet::singleton(1), RateSet::singleton(1),
                     /*capacity=*/0, /*initial_tokens=*/1);
  const auto view = h.buffer_view();
  ASSERT_TRUE(view.has_value());
  EXPECT_TRUE(view->is_cyclic);
  EXPECT_EQ(view->feedback_buffers.size(), 1u);
}

TEST(CyclicBufferView, MultiTokenedCycleBreaksAtOneEdgeOnly) {
  // Ping-pong loop a ⇄ b with initial tokens on *both* directions: only
  // a minimal feedback set is stripped (the later-inserted b→a), so a→b
  // keeps ordering the skeleton and the graph stays analysable with a
  // unique data sink.
  VrdfGraph g;
  const Duration rho = seconds(Rational(1));
  const ActorId src = g.add_actor("src", rho);
  const ActorId a = g.add_actor("a", rho);
  const ActorId b = g.add_actor("b", rho);
  const ActorId snk = g.add_actor("snk", rho);
  (void)g.add_buffer(src, a, RateSet::singleton(1), RateSet::singleton(1));
  const BufferEdges ab =
      g.add_buffer(a, b, RateSet::singleton(1), RateSet::singleton(1),
                   /*capacity=*/0, /*initial_tokens=*/2);
  const BufferEdges ba =
      g.add_buffer(b, a, RateSet::singleton(1), RateSet::singleton(1),
                   /*capacity=*/0, /*initial_tokens=*/2);
  (void)g.add_buffer(b, snk, RateSet::singleton(1), RateSet::singleton(1));
  const auto view = g.buffer_view();
  ASSERT_TRUE(view.has_value());
  ASSERT_EQ(view->feedback_buffers.size(), 1u);
  EXPECT_EQ(view->buffers[view->feedback_buffers[0]].data, ba.data);
  for (std::size_t pos = 0; pos < view->buffers.size(); ++pos) {
    if (view->buffers[pos].data == ab.data) {
      EXPECT_FALSE(view->is_feedback[pos]);
      EXPECT_TRUE(view->on_cycle[pos]);
    }
  }
  EXPECT_EQ(view->data_sinks, (std::vector<ActorId>{snk}));
  const GraphAnalysis sized = compute_buffer_capacities(
      g, ThroughputConstraint{snk, seconds(Rational(4))});
  EXPECT_TRUE(sized.admissible)
      << (sized.diagnostics.empty() ? "" : sized.diagnostics[0]);
}

TEST(CyclicBufferView, BufferCapacityCountsBothEdges) {
  VrdfGraph g;
  const Duration rho = seconds(Rational(1));
  const ActorId a = g.add_actor("a", rho);
  const ActorId b = g.add_actor("b", rho);
  const BufferEdges buffer = g.add_buffer(a, b, RateSet::singleton(1),
                                          RateSet::singleton(1),
                                          /*capacity=*/7, /*initial_tokens=*/3);
  EXPECT_EQ(g.edge(buffer.data).initial_tokens, 3);
  EXPECT_EQ(g.edge(buffer.space).initial_tokens, 4);
  EXPECT_EQ(g.buffer_capacity(buffer), 7);
  EXPECT_THROW((void)g.add_buffer(a, b, RateSet::singleton(1),
                                  RateSet::singleton(1), /*capacity=*/2,
                                  /*initial_tokens=*/3),
               ContractError);
}

// ------------------------------------------------------------- validation

TEST(CyclicValidation, RejectsTokenFreeCycleWithDiagnostic) {
  VrdfGraph g;
  const Duration rho = seconds(Rational(1));
  const ActorId a = g.add_actor("a", rho);
  const ActorId b = g.add_actor("b", rho);
  const ActorId c = g.add_actor("c", rho);
  (void)g.add_buffer(a, b, RateSet::singleton(1), RateSet::singleton(1));
  (void)g.add_buffer(b, c, RateSet::singleton(1), RateSet::singleton(1));
  (void)g.add_buffer(c, a, RateSet::singleton(1), RateSet::singleton(1));
  const dataflow::ValidationReport report = dataflow::validate_cyclic_model(g);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("cycle without initial tokens"),
            std::string::npos);
  EXPECT_NE(report.summary().find("a -> b -> c -> a"), std::string::npos)
      << report.summary();
  // The analysis never runs on it: diagnostics, not capacities.
  const GraphAnalysis analysis =
      compute_buffer_capacities(g, ThroughputConstraint{c, kTau});
  EXPECT_FALSE(analysis.admissible);
  EXPECT_NE(analysis.diagnostics[0].find("cycle without initial tokens"),
            std::string::npos);
}

TEST(CyclicValidation, RejectsVariableRatesOnCycleEdges) {
  VrdfGraph g;
  const Duration rho = seconds(Rational(1));
  const ActorId a = g.add_actor("a", rho);
  const ActorId b = g.add_actor("b", rho);
  (void)g.add_buffer(a, b, RateSet::interval(1, 2), RateSet::singleton(1));
  (void)g.add_buffer(b, a, RateSet::singleton(1), RateSet::singleton(1),
                     /*capacity=*/0, /*initial_tokens=*/2);
  const dataflow::ValidationReport report = dataflow::validate_cyclic_model(g);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("directed data cycle must be static"),
            std::string::npos);
}

TEST(CyclicValidation, AcceptsFeedbackPipeline) {
  const models::FeedbackPipeline app = models::make_feedback_pipeline();
  EXPECT_TRUE(dataflow::validate_cyclic_model(app.graph).ok());
  // The DAG model class still rejects it.
  const dataflow::ValidationReport dag = dataflow::validate_dag_model(app.graph);
  ASSERT_FALSE(dag.ok());
  EXPECT_NE(dag.summary().find("directed cycle"), std::string::npos);
}

// ----------------------------------------------------------------- pacing

TEST(CyclicPacing, PropagatesOverSkeletonAndChecksBackEdges) {
  const models::FeedbackPipeline app = models::make_feedback_pipeline();
  const PacingResult pacing =
      compute_pacing(app.graph, app.constraint);
  ASSERT_TRUE(pacing.ok) << pacing.diagnostics[0];
  EXPECT_TRUE(pacing.is_cyclic);
  EXPECT_FALSE(pacing.is_chain);
  // φ(v) = g(v)·τ: present τ, dec 2τ, src 4τ, and rctl is paced through
  // its skeleton out-edge rctl→src to τ.
  EXPECT_EQ(pacing.pacing_of(app.present), kTau);
  EXPECT_EQ(pacing.pacing_of(app.dec), kTau * Rational(2));
  EXPECT_EQ(pacing.pacing_of(app.src), kTau * Rational(4));
  EXPECT_EQ(pacing.pacing_of(app.rctl), kTau);
}

TEST(CyclicPacing, RejectsFlowInconsistentBackEdge) {
  // Like the pipeline's loop but the back-edge produces twice per dec
  // firing while rctl still consumes one: the circulating count grows
  // forever.  The rates are static, so validation passes and pacing must
  // diagnose the imbalance.
  VrdfGraph g;
  const Duration rho = seconds(Rational(1));
  const ActorId a = g.add_actor("a", rho);
  const ActorId b = g.add_actor("b", rho);
  const ActorId snk = g.add_actor("snk", rho);
  (void)g.add_buffer(a, b, RateSet::singleton(1), RateSet::singleton(1));
  (void)g.add_buffer(b, snk, RateSet::singleton(1), RateSet::singleton(1));
  (void)g.add_buffer(b, a, RateSet::singleton(2), RateSet::singleton(1),
                     /*capacity=*/0, /*initial_tokens=*/4);
  EXPECT_TRUE(dataflow::validate_cyclic_model(g).ok());
  const PacingResult pacing = compute_pacing(g, ThroughputConstraint{snk, kTau});
  ASSERT_FALSE(pacing.ok);
  EXPECT_NE(pacing.diagnostics[0].find("flow-inconsistent"),
            std::string::npos);
}

TEST(CyclicPacing, ActorFedOnlyByBackEdgesStaysATopologicalSource) {
  // rctl consumes only from the back-edge, produces into the skeleton —
  // it must be paced (through rctl→src), not reported as a second
  // sink/source problem.
  const models::FeedbackPipeline app = models::make_feedback_pipeline();
  const GraphAnalysis analysis =
      compute_buffer_capacities(app.graph, app.constraint);
  EXPECT_TRUE(analysis.admissible);
}

// ------------------------------------------------------------- capacities

TEST(CyclicCapacity, FeedbackPipelineHandComputed) {
  const models::FeedbackPipeline app = models::make_feedback_pipeline();
  const GraphAnalysis sized =
      compute_buffer_capacities(app.graph, app.constraint);
  ASSERT_TRUE(sized.admissible) << sized.diagnostics[0];
  EXPECT_TRUE(sized.is_cyclic);
  ASSERT_EQ(sized.pairs.size(), 4u);
  const auto pair_of = [&](const BufferEdges& b) -> const PairAnalysis& {
    for (const PairAnalysis& pair : sized.pairs) {
      if (pair.buffer.data == b.data) {
        return pair;
      }
    }
    throw ContractError("buffer not analysed");
  };
  // Hand-computed at tight response times (ρ = φ, τ = 40 ms), leads
  // ω(present)=0, ω(dec)=3τ, ω(src)=10τ, ω(rctl)=11τ:
  //   src→dec:      x = (7τ + 3τ)/τ = 10 → 11
  //   dec→present:  x = (3τ + τ)/τ  =  4 →  5 (variable γ: keeps the +1)
  //   dec→rctl:     back-edge, Δp = chain-local 3τ: x = 4 → 5, +δ=12 → 17
  //   rctl→src:     x = (τ + 7τ)/τ  =  8 →  9
  EXPECT_EQ(pair_of(app.src_dec).capacity, 11);
  EXPECT_EQ(pair_of(app.dec_present).capacity, 5);
  EXPECT_EQ(pair_of(app.dec_rctl).capacity, 17);
  EXPECT_EQ(pair_of(app.rctl_src).capacity, 9);
  EXPECT_EQ(sized.total_capacity, 42);
  EXPECT_TRUE(pair_of(app.dec_rctl).is_feedback);
  EXPECT_EQ(pair_of(app.dec_rctl).initial_tokens, 12);
  EXPECT_EQ(pair_of(app.dec_rctl).required_initial_tokens, 11);
  EXPECT_FALSE(pair_of(app.src_dec).is_feedback);
}

TEST(CyclicCapacity, ApplyCapacitiesKeepsCirculatingTokens) {
  models::FeedbackPipeline app = models::make_feedback_pipeline();
  const GraphAnalysis sized =
      compute_buffer_capacities(app.graph, app.constraint);
  ASSERT_TRUE(sized.admissible);
  apply_capacities(app.graph, sized);
  // ζ(dec→rctl) = 17 total: 12 containers hold the circulating reports,
  // 5 are free.
  EXPECT_EQ(app.graph.edge(app.dec_rctl.data).initial_tokens, 12);
  EXPECT_EQ(app.graph.edge(app.dec_rctl.space).initial_tokens, 5);
  EXPECT_EQ(app.graph.buffer_capacity(app.dec_rctl), 17);
}

TEST(CyclicCapacity, RejectsCycleWithInsufficientTokens) {
  models::FeedbackPipeline app = models::make_feedback_pipeline();
  // The loop's schedule-alignment credit requires 11 tokens but 3 only
  // buy 3τ: the period is unattainable and the analysis must say so
  // instead of emitting capacities that starve.
  app.graph.set_initial_tokens(app.dec_rctl.data, 3);
  const GraphAnalysis sized =
      compute_buffer_capacities(app.graph, app.constraint);
  ASSERT_FALSE(sized.admissible);
  EXPECT_NE(sized.diagnostics[0].find("cycle through back-edge"),
            std::string::npos);
  EXPECT_NE(sized.diagnostics[0].find("requires at least 11"),
            std::string::npos)
      << sized.diagnostics[0];
}

TEST(CyclicCapacity, SelfLoopIsAnalysable) {
  // A tokened self-loop models bounded self-concurrency; its pair
  // capacity covers the circulating tokens plus the chain-local slack.
  VrdfGraph g;
  const Duration rho = seconds(Rational(1));
  const ActorId a = g.add_actor("a", rho);
  const ActorId snk = g.add_actor("snk", rho);
  const BufferEdges loop =
      g.add_buffer(a, a, RateSet::singleton(1), RateSet::singleton(1),
                   /*capacity=*/0, /*initial_tokens=*/2);
  (void)g.add_buffer(a, snk, RateSet::singleton(1), RateSet::singleton(1));
  const GraphAnalysis sized = compute_buffer_capacities(
      g, ThroughputConstraint{snk, seconds(Rational(2))});
  ASSERT_TRUE(sized.admissible) << sized.diagnostics[0];
  for (const PairAnalysis& pair : sized.pairs) {
    if (pair.buffer.data == loop.data) {
      EXPECT_TRUE(pair.is_feedback);
      EXPECT_GE(pair.capacity, 2 + 1);
    }
  }
}

// ------------------------------------------------------------- min period

TEST(CyclicMinPeriod, SizedPipelineAttainsItsDesignPeriod) {
  models::FeedbackPipeline app = models::make_feedback_pipeline();
  const GraphAnalysis sized =
      compute_buffer_capacities(app.graph, app.constraint);
  ASSERT_TRUE(sized.admissible);
  apply_capacities(app.graph, sized);
  const MinPeriodResult headroom =
      min_admissible_period(app.graph, app.constraint.actor);
  ASSERT_TRUE(headroom.ok) << (headroom.diagnostics.empty()
                                   ? ""
                                   : headroom.diagnostics[0]);
  EXPECT_EQ(headroom.min_period, app.constraint.period);
}

TEST(CyclicMinPeriod, CycleBoundBindsWhenCapacitiesAreGenerous) {
  // a → b → snk with a single-token loop b → a; response times τ/4 and
  // huge capacities leave the max-cycle-ratio constraint as the binding
  // one: period ≥ (ρ(a) + ρ(b)) / 1 token = τ/2.
  VrdfGraph g;
  const Duration rho = kTau * Rational(1, 4);
  const ActorId a = g.add_actor("a", rho);
  const ActorId b = g.add_actor("b", rho);
  const ActorId snk = g.add_actor("snk", rho);
  (void)g.add_buffer(a, b, RateSet::singleton(1), RateSet::singleton(1), 1000);
  (void)g.add_buffer(b, snk, RateSet::singleton(1), RateSet::singleton(1),
                     1000);
  (void)g.add_buffer(b, a, RateSet::singleton(1), RateSet::singleton(1),
                     /*capacity=*/1000, /*initial_tokens=*/1);
  const MinPeriodResult result = min_admissible_period(g, snk);
  ASSERT_TRUE(result.ok) << (result.diagnostics.empty()
                                 ? ""
                                 : result.diagnostics[0]);
  EXPECT_EQ(result.min_period, kTau * Rational(1, 2));
  EXPECT_NE(result.binding_constraint.find("cycle through back-edge b->a"),
            std::string::npos)
      << result.binding_constraint;
}

// --------------------------------------------------------------- deadlock

TEST(CyclicDeadlock, MinimaCoverCirculatingTokens) {
  const models::FeedbackPipeline app = models::make_feedback_pipeline();
  const std::vector<std::int64_t> minima =
      min_deadlock_free_capacities(app.graph);
  const auto view = app.graph.buffer_view();
  ASSERT_EQ(minima.size(), view->buffers.size());
  for (std::size_t pos = 0; pos < view->buffers.size(); ++pos) {
    const dataflow::Edge& data = app.graph.edge(view->buffers[pos].data);
    const std::int64_t expected =
        min_deadlock_free_pair_capacity(data.production, data.consumption) +
        data.initial_tokens;
    EXPECT_EQ(minima[pos], expected) << "buffer " << pos;
  }
}

TEST(CyclicDeadlock, TokenFreeCycleThrows) {
  VrdfGraph g;
  const Duration rho = seconds(Rational(1));
  const ActorId a = g.add_actor("a", rho);
  const ActorId b = g.add_actor("b", rho);
  (void)g.add_buffer(a, b, RateSet::singleton(1), RateSet::singleton(1));
  (void)g.add_buffer(b, a, RateSet::singleton(1), RateSet::singleton(1));
  EXPECT_THROW((void)min_deadlock_free_capacities(g), ModelError);
}

// --------------------------------------------------------------------- io

TEST(CyclicIo, DotRendersBackEdgesDashed) {
  models::FeedbackPipeline app = models::make_feedback_pipeline();
  const GraphAnalysis sized =
      compute_buffer_capacities(app.graph, app.constraint);
  ASSERT_TRUE(sized.admissible);
  apply_capacities(app.graph, sized);
  const std::string dot = io::to_dot(app.graph, app.constraint, sized);
  EXPECT_NE(dot.find("d=12 [feedback]\" style=dashed"), std::string::npos)
      << dot;
  EXPECT_NE(dot.find("zeta=17"), std::string::npos);
  EXPECT_NE(dot.find("peripheries=2"), std::string::npos);
}

TEST(CyclicIo, ReportNamesTheModelClassAndBackEdges) {
  models::FeedbackPipeline app = models::make_feedback_pipeline();
  const GraphAnalysis sized =
      compute_buffer_capacities(app.graph, app.constraint);
  ASSERT_TRUE(sized.admissible);
  apply_capacities(app.graph, sized);
  const std::string report =
      io::analysis_report(app.graph, app.constraint, sized);
  EXPECT_NE(report.find("cyclic graph"), std::string::npos);
  EXPECT_NE(report.find("1 feedback back-edge"), std::string::npos);
  EXPECT_NE(report.find("(feedback, delta=12)"), std::string::npos);
  // The baseline also carries the circulating tokens.
  const baseline::TraditionalResult traditional =
      baseline::traditional_capacities(app.graph);
  ASSERT_TRUE(traditional.ok);
  ASSERT_EQ(traditional.pairs.size(), 4u);
}

TEST(CyclicIo, TextFormatRoundTripsBackEdgeTokens) {
  models::FeedbackPipeline app = models::make_feedback_pipeline();
  const GraphAnalysis sized =
      compute_buffer_capacities(app.graph, app.constraint);
  ASSERT_TRUE(sized.admissible);
  apply_capacities(app.graph, sized);
  const std::string text = io::write_chain(app.graph, app.constraint);
  EXPECT_NE(text.find("delta=12"), std::string::npos) << text;
  EXPECT_NE(text.find("capacity=17"), std::string::npos) << text;
  const io::ChainDocument doc = io::read_chain(text);
  const auto view = doc.graph.buffer_view();
  ASSERT_TRUE(view.has_value());
  EXPECT_TRUE(view->is_cyclic);
  ASSERT_TRUE(doc.constraint.has_value());
  const GraphAnalysis reloaded =
      compute_buffer_capacities(doc.graph, *doc.constraint);
  ASSERT_TRUE(reloaded.admissible)
      << (reloaded.diagnostics.empty() ? "" : reloaded.diagnostics[0]);
  EXPECT_EQ(reloaded.total_capacity, sized.total_capacity);
}

// ------------------------------------------------------------- end-to-end

TEST(CyclicSufficiency, FeedbackPipelineSustainsPeriodicExecution) {
  models::FeedbackPipeline app = models::make_feedback_pipeline();
  const GraphAnalysis sized =
      compute_buffer_capacities(app.graph, app.constraint);
  ASSERT_TRUE(sized.admissible);
  apply_capacities(app.graph, sized);
  const sim::VerifyResult verdict =
      sim::verify_throughput(app.graph, app.constraint);
  EXPECT_TRUE(verdict.ok) << verdict.detail;
  EXPECT_EQ(verdict.starvation_count, 0);
}

// The published per-seed shape schedule of the PR 3 sweep — kept as the
// fleet's custom generator so seed N still yields the same graph.
models::SyntheticChain make_sweep_cyclic(std::uint64_t seed,
                                         bool source_constrained) {
  models::RandomCyclicSpec spec;
  spec.base.seed = seed;
  spec.base.stages = 1 + seed % 3;
  spec.base.max_branches = 2 + seed % 2;
  spec.base.max_branch_length = 1 + seed % 3;
  spec.base.max_segment_length = seed % 3;
  spec.base.variable_percent = 60;
  spec.base.zero_percent = 25;
  spec.base.source_constrained = source_constrained;
  spec.feedback_percent = 60;
  return models::make_random_cyclic(spec);
}

TEST(CyclicSufficiency, RandomCyclicGraphsSustainPeriodicExecution) {
  // The tentpole acceptance check, through the fleet harness (PR 8): on
  // 50 random cyclic graphs per constraint placement — up from 30 — the
  // computed capacities survive the two-phase simulation check with not
  // a single starved activation.
  sim::SweepSpec spec;
  spec.classes = {models::ModelClass::Cyclic};
  spec.seeds_per_class = 50;
  spec.modes = {sim::ConstraintMode::Sink, sim::ConstraintMode::Source};
  spec.observe_firings = 400;
  spec.generator = [](const sim::FleetItem& item) {
    models::SyntheticChain generated = make_sweep_cyclic(
        item.seed_ordinal, item.mode == sim::ConstraintMode::Source);
    models::SyntheticModel model;
    model.graph = std::move(generated.graph);
    model.constraints = {generated.constraint};
    return model;
  };
  const sim::FleetReport report = sim::FleetSweep(spec).run(4);
  EXPECT_EQ(report.total_items, 100);
  EXPECT_EQ(report.passed, report.total_items) << sim::canonical_text(report);
  EXPECT_EQ(report.failed + report.rejected, 0);
  EXPECT_EQ(report.starvations, 0);

  // The structural claim the old loop also made: the generated graphs
  // really carry back edges (the fleet only checks the verdicts).
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const models::SyntheticChain model = make_sweep_cyclic(seed, false);
    const GraphAnalysis sized =
        compute_buffer_capacities(model.graph, model.constraint);
    ASSERT_TRUE(sized.admissible)
        << "seed " << seed << ": " << sized.diagnostics[0];
    EXPECT_TRUE(sized.is_cyclic) << "seed " << seed;
  }
}

TEST(CyclicSufficiency, StrippedTokensAreRejectedNotAnalysed) {
  // Every token-free cycle is rejected with a diagnostic rather than
  // analysed: strip the circulating tokens from generated cyclic models
  // and require the analysis to refuse.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    models::RandomCyclicSpec spec;
    spec.base.seed = seed;
    spec.base.stages = 1 + seed % 2;
    const models::SyntheticChain model = models::make_random_cyclic(spec);
    VrdfGraph graph = model.graph;
    const auto view = graph.buffer_view();
    ASSERT_TRUE(view.has_value());
    ASSERT_FALSE(view->feedback_buffers.empty());
    for (const std::size_t pos : view->feedback_buffers) {
      graph.set_initial_tokens(view->buffers[pos].data, 0);
    }
    const GraphAnalysis sized =
        compute_buffer_capacities(graph, model.constraint);
    ASSERT_FALSE(sized.admissible) << "seed " << seed;
    EXPECT_NE(sized.diagnostics[0].find("cycle without initial tokens"),
              std::string::npos)
        << "seed " << seed << ": " << sized.diagnostics[0];
  }
}

}  // namespace
}  // namespace vrdf::analysis
