// Proof-carrying capacity certificates and their independent checker.
//
// The load-bearing properties:
//  * Soundness of the pair: every certificate the analysis emits passes
//    the checker — across the published MP3 case study, every randomized
//    sweep class, both constraint placements, faulted/headroom variants,
//    and every state the incremental engine renders (zero false
//    rejections).
//  * Mutation coverage: perturbing any single field of a valid
//    certificate is detected, and the violation names the right clause
//    family and the right edge or actor.  A checker that misses a
//    mutation class is re-deriving less than it claims.
//  * Fleet integration: certify-mode reports keep the canonical-bytes
//    guarantee across thread counts.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/admission.hpp"
#include "analysis/buffer_sizing.hpp"
#include "analysis/certificate.hpp"
#include "analysis/checker.hpp"
#include "analysis/incremental.hpp"
#include "analysis/snapshot.hpp"
#include "models/mp3.hpp"
#include "models/synthetic.hpp"
#include "sim/fleet.hpp"
#include "util/error.hpp"

namespace vrdf {
namespace {

using analysis::Certificate;
using analysis::CertificateCheck;
using analysis::CheckerOptions;
using analysis::ClauseKind;
using analysis::ClauseViolation;
using analysis::ConstraintSide;
using analysis::GraphAnalysis;
using analysis::ThroughputConstraint;
using dataflow::ActorId;

// True when some violation matches the expected clause family and its
// subject mentions `where` (an actor or edge name; empty = any subject).
[[nodiscard]] bool names(const CertificateCheck& check, ClauseKind kind,
                         const std::string& where) {
  for (const ClauseViolation& violation : check.violations) {
    if (violation.kind == kind &&
        (where.empty() ||
         violation.subject.find(where) != std::string::npos)) {
      return true;
    }
  }
  return false;
}

[[nodiscard]] std::string render(const CertificateCheck& check) {
  std::string out;
  for (const ClauseViolation& violation : check.violations) {
    out += "  " + describe(violation) + "\n";
  }
  return out.empty() ? "  (no violations)" : out;
}

// ------------------------------------------------------------ MP3 anchor

TEST(Certificate, Mp3EmitsAndChecksCleanWithPublishedCapacities) {
  models::Mp3Playback mp3 = models::make_mp3_playback();
  const GraphAnalysis sized = analysis::compute_buffer_capacities(
      mp3.graph, analysis::ConstraintSet{mp3.constraint});
  ASSERT_TRUE(sized.admissible);
  const Certificate cert = analysis::make_certificate(mp3.graph, sized);

  // The certificate transcribes the published numbers bit-for-bit.
  ASSERT_EQ(cert.pairs.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(cert.pairs[i].capacity,
              models::Mp3PaperNumbers::kVrdfCapacities[i]);
  }
  EXPECT_EQ(cert.total_capacity, 6015 + 3263 + 882);
  EXPECT_EQ(cert.actors.size(), 4u);

  const CertificateCheck check =
      analysis::check_certificate(mp3.graph, cert);
  EXPECT_TRUE(check.ok) << render(check);
  EXPECT_TRUE(check.violations.empty());
  EXPECT_GT(check.clauses_checked, 50u);
  EXPECT_TRUE(check.first_violation().empty());
}

TEST(Certificate, RefusesInadmissibleAndPreLeadShapes) {
  models::Mp3Playback mp3 = models::make_mp3_playback();
  const GraphAnalysis sized = analysis::compute_buffer_capacities(
      mp3.graph, analysis::ConstraintSet{mp3.constraint});
  GraphAnalysis inadmissible = sized;
  inadmissible.admissible = false;
  EXPECT_THROW((void)analysis::make_certificate(mp3.graph, inadmissible),
               Error);
  GraphAnalysis leadless = sized;
  leadless.leads.clear();
  EXPECT_THROW((void)analysis::make_certificate(mp3.graph, leadless), Error);
}

// -------------------------------------------------------- mutation suite

/// Fixture helpers: a valid (model, analysis, certificate) triple plus
/// the assertion that a mutated copy is rejected with the right clause
/// kind at the right subject.
struct Mutation {
  const char* label;
  ClauseKind kind;
  std::string where;  // substring the violation subject must contain
  void (*apply)(Certificate&);
};

void expect_detected(const dataflow::VrdfGraph& graph,
                     const Certificate& cert, const Mutation& mutation) {
  Certificate mutated = cert;
  mutation.apply(mutated);
  const CertificateCheck check =
      analysis::check_certificate(graph, mutated);
  EXPECT_FALSE(check.ok) << mutation.label << ": mutation undetected";
  EXPECT_TRUE(names(check, mutation.kind, mutation.where))
      << mutation.label << ": expected a "
      << analysis::clause_kind_name(mutation.kind) << " violation at '"
      << mutation.where << "', got:\n"
      << render(check);
}

// The MP3 model's certificate: actors vBR(0) vMP3(1) vSRC(2) vDAC(3) in
// topological order; pairs b1(0) b2(1) b3(2); one sink-kind constraint
// at vDAC.  Every field of every fact family is perturbed.
TEST(CertificateMutations, EveryClauseFamilyIsDetectedAndNamed) {
  models::Mp3Playback mp3 = models::make_mp3_playback();
  const GraphAnalysis sized = analysis::compute_buffer_capacities(
      mp3.graph, analysis::ConstraintSet{mp3.constraint});
  ASSERT_TRUE(sized.admissible);
  const Certificate cert = analysis::make_certificate(mp3.graph, sized);

  const Mutation mutations[] = {
      // ---- φ clauses
      {"phi bumped on an interior actor", ClauseKind::Phi, "vMP3",
       [](Certificate& c) { c.actors[1].phi += Duration(Rational(1, 7)); }},
      {"phi zeroed", ClauseKind::Phi, "vBR",
       [](Certificate& c) { c.actors[0].phi = Duration(); }},
      {"constraint period moved off the anchor's phi", ClauseKind::Phi,
       "vDAC",
       [](Certificate& c) {
         c.constraints[0].period += Duration(Rational(1, 100000));
       }},
      {"rho raised above phi", ClauseKind::Phi, "vSRC",
       [](Certificate& c) { c.actors[2].rho = c.actors[2].phi * Rational(2); }},
      // ---- ω clauses
      {"lead bumped on an interior actor", ClauseKind::Omega, "vMP3",
       [](Certificate& c) { c.actors[1].lead += Duration(Rational(1, 9)); }},
      {"anchor lead made nonzero", ClauseKind::Omega, "vDAC",
       [](Certificate& c) { c.actors[3].lead = Duration(Rational(1, 2)); }},
      // ---- ζ clauses
      {"delta_producer perturbed", ClauseKind::Zeta, "vBR -> vMP3",
       [](Certificate& c) {
         c.pairs[0].delta_producer += Duration(Rational(1, 3));
       }},
      {"delta_consumer perturbed", ClauseKind::Zeta, "vMP3 -> vSRC",
       [](Certificate& c) {
         c.pairs[1].delta_consumer += Duration(Rational(1, 3));
       }},
      {"raw_tokens perturbed", ClauseKind::Zeta, "vSRC -> vDAC",
       [](Certificate& c) { c.pairs[2].raw_tokens += Rational(1, 2); }},
      {"tight_rounding claim flipped on", ClauseKind::Zeta, "vBR -> vMP3",
       [](Certificate& c) { c.pairs[0].tight_rounding = true; }},
      {"tight_rounding claim flipped off", ClauseKind::Zeta, "vSRC -> vDAC",
       [](Certificate& c) { c.pairs[2].tight_rounding = false; }},
      {"capacity shaved by one container", ClauseKind::Zeta, "vBR -> vMP3",
       [](Certificate& c) {
         c.pairs[0].capacity -= 1;
         c.total_capacity -= 1;  // keep the sum consistent — the per-pair
                                 // equation alone must catch it
       }},
      {"total_capacity inflated", ClauseKind::Zeta, "certificate",
       [](Certificate& c) { c.total_capacity += 1; }},
      {"rounding mode swapped to PaperLiteral", ClauseKind::Zeta,
       "vSRC -> vDAC",
       [](Certificate& c) {
         // b3 is the tight pair (x integral): ⌊x⌋+1 would buy one extra
         // container, so the recorded 882 no longer matches.
         c.rounding = analysis::RoundingMode::PaperLiteral;
       }},
      // ---- δ clauses
      {"cycle requirement invented on a skeleton pair", ClauseKind::Delta,
       "vMP3 -> vSRC",
       [](Certificate& c) { c.pairs[1].required_initial_tokens = 2; }},
      // ---- coverage clauses
      {"side flipped to Source", ClauseKind::Coverage, "vSRC -> vDAC",
       [](Certificate& c) { c.pairs[2].side = ConstraintSide::Source; }},
      {"variable pair claimed static", ClauseKind::Coverage, "vBR -> vMP3",
       [](Certificate& c) { c.pairs[0].is_static = true; }},
      {"static pair claimed variable", ClauseKind::Coverage, "vMP3 -> vSRC",
       [](Certificate& c) { c.pairs[1].is_static = false; }},
      {"acyclic edge claimed as feedback", ClauseKind::Coverage,
       "vMP3 -> vSRC",
       [](Certificate& c) { c.pairs[1].is_feedback = true; }},
      {"pair endpoints swapped", ClauseKind::Coverage, "",
       [](Certificate& c) {
         std::swap(c.pairs[0].producer, c.pairs[0].consumer);
       }},
      {"duplicate actor fact", ClauseKind::Coverage, "",
       [](Certificate& c) { c.actors[0].actor = c.actors[1].actor; }},
      {"duplicate pair fact", ClauseKind::Coverage, "",
       [](Certificate& c) { c.pairs[0].buffer = c.pairs[1].buffer; }},
      {"anchor kind vector flipped", ClauseKind::Coverage, "vDAC",
       [](Certificate& c) { c.constraint_is_sink_kind[0] = false; }},
      {"recorded rho unbound from the graph", ClauseKind::Coverage, "vMP3",
       [](Certificate& c) { c.actors[1].rho += Duration(Rational(1, 5)); }},
      {"recorded delta unbound from the graph", ClauseKind::Coverage,
       "vBR -> vMP3",
       [](Certificate& c) { c.pairs[0].initial_tokens += 1; }},
      {"skeleton order reversed", ClauseKind::Coverage, "",
       [](Certificate& c) { std::swap(c.actors[0], c.actors[3]); }},
      {"constraint actor repointed", ClauseKind::Phi, "vSRC",
       [](Certificate& c) {
         c.constraints[0].actor = c.actors[2].actor;  // vSRC: φ ≠ τ there
       }},
      {"negative constraint period", ClauseKind::Phi, "vDAC",
       [](Certificate& c) {
         c.constraints[0].period = Duration(Rational(-1, 44100));
       }},
  };
  for (const Mutation& mutation : mutations) {
    SCOPED_TRACE(mutation.label);
    expect_detected(mp3.graph, cert, mutation);
  }
}

// Feedback δ clauses need a cyclic model: perturb the recorded cycle
// bound and starve the circulating tokens on a generated cyclic graph.
TEST(CertificateMutations, FeedbackDeltaClausesDetectedOnCyclicModels) {
  bool exercised = false;
  for (std::uint64_t seed = 1; seed <= 20 && !exercised; ++seed) {
    models::RandomModelSpec spec;
    spec.model_class = models::ModelClass::Cyclic;
    spec.seed = seed;
    models::SyntheticModel model = models::make_random_model(spec);
    const GraphAnalysis sized = analysis::compute_buffer_capacities(
        model.graph, model.constraints);
    if (!sized.admissible) {
      continue;
    }
    const Certificate cert =
        analysis::make_certificate(model.graph, sized);
    ASSERT_TRUE(analysis::check_certificate(model.graph, cert).ok);
    for (std::size_t p = 0; p < cert.pairs.size(); ++p) {
      if (!cert.pairs[p].is_feedback) {
        continue;
      }
      exercised = true;
      {
        Certificate mutated = cert;
        mutated.pairs[p].required_initial_tokens += 1;
        const CertificateCheck check =
            analysis::check_certificate(model.graph, mutated);
        EXPECT_FALSE(check.ok);
        EXPECT_TRUE(names(check, ClauseKind::Delta, "")) << render(check);
      }
      {
        // A back-edge demoted to skeleton creates a claimed-skeleton
        // cycle — caught structurally.
        Certificate mutated = cert;
        mutated.pairs[p].is_feedback = false;
        const CertificateCheck check =
            analysis::check_certificate(model.graph, mutated);
        EXPECT_FALSE(check.ok);
        EXPECT_TRUE(names(check, ClauseKind::Coverage, "")) << render(check);
      }
      break;
    }
  }
  ASSERT_TRUE(exercised)
      << "no admissible cyclic model with a feedback pair in 20 seeds";
}

// Exhaustive single-field sweep: EVERY numeric witness field of every
// fact, perturbed one at a time, must be rejected (100% detection).
TEST(CertificateMutations, ExhaustiveSingleFieldSweepIsFullyDetected) {
  const models::ModelClass classes[] = {
      models::ModelClass::Chain, models::ModelClass::ForkJoin,
      models::ModelClass::Cyclic, models::ModelClass::MultiConstraint,
      models::ModelClass::InteriorPinned};
  int mutations_checked = 0;
  for (const models::ModelClass model_class : classes) {
    models::SyntheticModel model;
    GraphAnalysis sized;
    bool found = false;
    for (std::uint64_t seed = 1; seed <= 20 && !found; ++seed) {
      models::RandomModelSpec spec;
      spec.model_class = model_class;
      spec.seed = seed;
      model = models::make_random_model(spec);
      sized =
          analysis::compute_buffer_capacities(model.graph, model.constraints);
      found = sized.admissible;
    }
    ASSERT_TRUE(found) << "class " << static_cast<int>(model_class);
    const Certificate cert = analysis::make_certificate(model.graph, sized);
    ASSERT_TRUE(analysis::check_certificate(model.graph, cert).ok);

    const auto detected = [&](const Certificate& mutated) {
      return !analysis::check_certificate(model.graph, mutated).ok;
    };
    const Duration bump(Rational(1, 999983));  // prime denominator: never
                                               // cancels against model
                                               // rationals
    for (std::size_t i = 0; i < cert.actors.size(); ++i) {
      Certificate m = cert;
      m.actors[i].phi += bump;
      EXPECT_TRUE(detected(m)) << "actors[" << i << "].phi";
      m = cert;
      m.actors[i].lead += bump;
      EXPECT_TRUE(detected(m)) << "actors[" << i << "].lead";
      m = cert;
      m.actors[i].rho += bump;
      EXPECT_TRUE(detected(m)) << "actors[" << i << "].rho";
      mutations_checked += 3;
    }
    for (std::size_t p = 0; p < cert.pairs.size(); ++p) {
      Certificate m = cert;
      m.pairs[p].delta_producer += bump;
      EXPECT_TRUE(detected(m)) << "pairs[" << p << "].delta_producer";
      m = cert;
      m.pairs[p].delta_consumer += bump;
      EXPECT_TRUE(detected(m)) << "pairs[" << p << "].delta_consumer";
      m = cert;
      m.pairs[p].raw_tokens += Rational(1, 999983);
      EXPECT_TRUE(detected(m)) << "pairs[" << p << "].raw_tokens";
      m = cert;
      m.pairs[p].initial_tokens += 1;
      EXPECT_TRUE(detected(m)) << "pairs[" << p << "].initial_tokens";
      m = cert;
      m.pairs[p].required_initial_tokens += 1;
      EXPECT_TRUE(detected(m)) << "pairs[" << p << "].required_initial_tokens";
      m = cert;
      m.pairs[p].capacity += 1;
      EXPECT_TRUE(detected(m)) << "pairs[" << p << "].capacity";
      m = cert;
      m.pairs[p].side = m.pairs[p].side == ConstraintSide::Sink
                            ? ConstraintSide::Source
                            : ConstraintSide::Sink;
      EXPECT_TRUE(detected(m)) << "pairs[" << p << "].side";
      m = cert;
      m.pairs[p].is_static = !m.pairs[p].is_static;
      EXPECT_TRUE(detected(m)) << "pairs[" << p << "].is_static";
      m = cert;
      m.pairs[p].is_feedback = !m.pairs[p].is_feedback;
      EXPECT_TRUE(detected(m)) << "pairs[" << p << "].is_feedback";
      mutations_checked += 9;
    }
    {
      Certificate m = cert;
      m.total_capacity += 1;
      EXPECT_TRUE(detected(m)) << "total_capacity";
      ++mutations_checked;
    }
    for (std::size_t c = 0; c < cert.constraints.size(); ++c) {
      Certificate m = cert;
      m.constraints[c].period += bump;
      EXPECT_TRUE(detected(m)) << "constraints[" << c << "].period";
      ++mutations_checked;
    }
  }
  // Sanity: the sweep actually exercised a substantial mutation surface.
  EXPECT_GT(mutations_checked, 150);
}

// ----------------------------------------- acceptance: no false rejects

// Every admissible analysis across the randomized sweep space must
// certify cleanly: 5 classes x seeds, sink+source placements, plain and
// faulted+headroom variants.  A single failure here is an analyzer/
// checker disagreement — exactly what the pair exists to surface.
TEST(CertificateAcceptance, RandomizedSweepsCertifyWithZeroFalseRejections) {
  for (const bool faulted : {false, true}) {
    sim::SweepSpec spec;
    spec.seeds_per_class = 12;
    spec.modes = {sim::ConstraintMode::Sink, sim::ConstraintMode::Source};
    spec.headroom_levels = faulted ? std::vector<std::int64_t>{0, 2}
                                   : std::vector<std::int64_t>{0};
    spec.observe_firings = 60;
    spec.faulted = faulted;
    spec.certify = true;
    const sim::FleetSweep sweep(spec);
    const sim::FleetReport report = sweep.run(2);
    EXPECT_EQ(report.certificate_failures, 0)
        << (faulted ? "faulted" : "plain") << " sweep";
    EXPECT_GT(report.certified, 0);
    for (const sim::FleetItemResult& item : report.items) {
      if (item.certificate_clauses > 0) {
        EXPECT_TRUE(item.certificate_ok)
            << "item " << item.item.index << ": " << item.detail;
      } else {
        // Only items the analysis itself refused may skip certification.
        EXPECT_TRUE(item.rejected) << "item " << item.item.index;
      }
    }
  }
}

// Certify-mode fleet reports keep the canonical-bytes guarantee.
TEST(CertificateAcceptance, CertifyModeCanonicalBytesAcrossThreadCounts) {
  sim::SweepSpec spec;
  spec.seeds_per_class = 6;
  spec.modes = {sim::ConstraintMode::Sink, sim::ConstraintMode::Source};
  spec.observe_firings = 50;
  spec.certify = true;
  const sim::FleetSweep sweep(spec);
  const std::string one = sim::canonical_text(sweep.run(1));
  const std::string two = sim::canonical_text(sweep.run(2));
  const std::string eight = sim::canonical_text(sweep.run(8));
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
  EXPECT_NE(one.find(" certify=1 "), std::string::npos);
  EXPECT_NE(one.find("cert_failures=0"), std::string::npos);
}

// Item codec round-trips the certificate fields.
TEST(CertificateAcceptance, ItemCodecRoundTripsCertificateFields) {
  sim::FleetItemResult result;
  result.item.index = 7;
  result.item.model_class = models::ModelClass::Cyclic;
  result.item.seed_ordinal = 3;
  result.pass = true;
  result.certificate_clauses = 451;
  result.certificate_ok = true;
  const std::string line = sim::encode_item_line(result);
  sim::FleetItemResult decoded;
  ASSERT_TRUE(sim::decode_item_line(line, &decoded));
  EXPECT_EQ(decoded.certificate_clauses, 451);
  EXPECT_TRUE(decoded.certificate_ok);
  EXPECT_EQ(sim::encode_item_line(decoded), line);
}

// --------------------------------------- incremental + admission gating

TEST(CertificateIncremental, EngineCertifiesMp3AdmissionSequence) {
  models::Mp3Playback mp3 = models::make_mp3_playback();
  const analysis::TopologySnapshot snapshot(mp3.graph);
  ASSERT_TRUE(snapshot.ok());
  analysis::AdmissionController controller(
      snapshot, analysis::ConstraintSet{mp3.constraint});
  controller.set_require_certificate(true);
  EXPECT_TRUE(controller.require_certificate());

  // A retune within budget: accepted, and certified.
  const Duration original_rho = mp3.graph.actor(mp3.mp3).response_time;
  const analysis::AdmissionDecision ok_decision = controller.retune(
      mp3.mp3, Duration(original_rho.seconds() * Rational(1, 2)));
  EXPECT_TRUE(ok_decision.accepted);
  // A retune past the pacing budget: rejected on admissibility (the
  // certificate gate never sees an inadmissible candidate).
  const analysis::AdmissionDecision bad_decision =
      controller.retune(mp3.mp3, seconds(Rational(1000)));
  EXPECT_FALSE(bad_decision.accepted);
  // A period move and its revert: both certified; the revert restores
  // the published numbers under active certification.
  const analysis::AdmissionDecision slower = controller.set_period(
      mp3.constraint.actor,
      Duration(mp3.constraint.period.seconds() * Rational(2)));
  EXPECT_TRUE(slower.accepted);
  const analysis::AdmissionDecision restore_period =
      controller.set_period(mp3.constraint.actor, mp3.constraint.period);
  EXPECT_TRUE(restore_period.accepted);
  const analysis::AdmissionDecision restore_rho =
      controller.retune(mp3.mp3, original_rho);
  EXPECT_TRUE(restore_rho.accepted);

  const analysis::InvalidationStats& stats = controller.engine().stats();
  EXPECT_GE(stats.certificates_checked, 3u);  // accepted ops + rollbacks
  EXPECT_GT(stats.certificate_clauses, 0u);
  EXPECT_EQ(stats.certificate_violations, 0u)
      << (controller.engine().last_certificate_violation().has_value()
              ? describe(*controller.engine().last_certificate_violation())
              : std::string());
  EXPECT_FALSE(
      controller.engine().last_certificate_violation().has_value());

  // The serviced state stays the published shape under certification.
  EXPECT_EQ(controller.analysis().total_capacity,
            models::Mp3PaperNumbers::kVrdfCapacities[0] +
                models::Mp3PaperNumbers::kVrdfCapacities[1] +
                models::Mp3PaperNumbers::kVrdfCapacities[2]);
}

TEST(CertificateIncremental, SetCertifyTogglesAndClearsState) {
  models::Mp3Playback mp3 = models::make_mp3_playback();
  const analysis::TopologySnapshot snapshot(mp3.graph);
  analysis::IncrementalAnalysis engine(
      snapshot, analysis::ConstraintSet{mp3.constraint});
  EXPECT_FALSE(engine.certify());
  const Duration rho = mp3.graph.actor(mp3.mp3).response_time;
  engine.retune(mp3.mp3, Duration(rho.seconds() * Rational(1, 2)));
  EXPECT_EQ(engine.stats().certificates_checked, 0u);  // off by default
  engine.set_certify(true);
  engine.retune(mp3.mp3, Duration(rho.seconds() * Rational(1, 4)));
  EXPECT_EQ(engine.stats().certificates_checked, 1u);
  EXPECT_FALSE(engine.last_certificate_violation().has_value());
  engine.set_certify(false);
  engine.retune(mp3.mp3, rho);
  EXPECT_EQ(engine.stats().certificates_checked, 1u);  // unchanged
}

}  // namespace
}  // namespace vrdf
