// Incremental re-analysis engine and admission controller: randomized
// differential sweeps (every ModelClass × 40 seeds × random
// retune/set_period/admit/remove/δ-override sequences, asserting the
// incremental GraphAnalysis is field-for-field identical to a full
// recompute after every operation — including rejection shapes and
// diagnostics), the MP3 anchor {6015, 3263, 882} served through the
// controller, rollback-on-rejection, the single-constraint period
// rescale path, δ-override contracts, and stale-snapshot contract
// errors naming the offending mutation.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "analysis/admission.hpp"
#include "analysis/buffer_sizing.hpp"
#include "analysis/incremental.hpp"
#include "analysis/snapshot.hpp"
#include "io/report.hpp"
#include "models/mp3.hpp"
#include "models/synthetic.hpp"
#include "util/error.hpp"

namespace vrdf::analysis {
namespace {

using dataflow::ActorId;
using dataflow::VrdfGraph;

void expect_identical(const GraphAnalysis& got, const GraphAnalysis& want) {
  EXPECT_EQ(got.admissible, want.admissible);
  EXPECT_EQ(got.diagnostics, want.diagnostics);
  EXPECT_EQ(got.side, want.side);
  ASSERT_EQ(got.constraints.size(), want.constraints.size());
  for (std::size_t i = 0; i < got.constraints.size(); ++i) {
    EXPECT_EQ(got.constraints[i].actor, want.constraints[i].actor);
    EXPECT_EQ(got.constraints[i].period, want.constraints[i].period);
  }
  EXPECT_EQ(got.constraint_is_sink_kind, want.constraint_is_sink_kind);
  EXPECT_EQ(got.constraint_is_source_kind, want.constraint_is_source_kind);
  EXPECT_EQ(got.is_chain, want.is_chain);
  EXPECT_EQ(got.is_cyclic, want.is_cyclic);
  EXPECT_EQ(got.actors_in_order, want.actors_in_order);
  EXPECT_EQ(got.pacing, want.pacing);
  EXPECT_EQ(got.leads, want.leads);
  EXPECT_EQ(got.total_capacity, want.total_capacity);
  EXPECT_EQ(got.rounding, want.rounding);
  ASSERT_EQ(got.pairs.size(), want.pairs.size());
  for (std::size_t i = 0; i < got.pairs.size(); ++i) {
    const PairAnalysis& g = got.pairs[i];
    const PairAnalysis& w = want.pairs[i];
    EXPECT_EQ(g.producer, w.producer) << "pair " << i;
    EXPECT_EQ(g.consumer, w.consumer) << "pair " << i;
    EXPECT_EQ(g.buffer.data, w.buffer.data) << "pair " << i;
    EXPECT_EQ(g.buffer.space, w.buffer.space) << "pair " << i;
    EXPECT_EQ(g.pacing_basis, w.pacing_basis) << "pair " << i;
    EXPECT_EQ(g.bound_rate, w.bound_rate) << "pair " << i;
    EXPECT_EQ(g.delta_producer, w.delta_producer) << "pair " << i;
    EXPECT_EQ(g.delta_consumer, w.delta_consumer) << "pair " << i;
    EXPECT_EQ(g.delta_total, w.delta_total) << "pair " << i;
    EXPECT_EQ(g.raw_tokens, w.raw_tokens) << "pair " << i;
    EXPECT_EQ(g.capacity, w.capacity) << "pair " << i;
    EXPECT_EQ(g.determined_by, w.determined_by) << "pair " << i;
    EXPECT_EQ(g.is_static, w.is_static) << "pair " << i;
    EXPECT_EQ(g.is_feedback, w.is_feedback) << "pair " << i;
    EXPECT_EQ(g.initial_tokens, w.initial_tokens) << "pair " << i;
    EXPECT_EQ(g.required_initial_tokens, w.required_initial_tokens)
        << "pair " << i;
  }
}

// ----------------------------------------------- randomized differential

void run_differential_sequence(models::ModelClass model_class,
                               std::uint64_t seed) {
  models::RandomModelSpec spec;
  spec.model_class = model_class;
  spec.seed = seed;
  models::SyntheticModel model = models::make_random_model(spec);
  const TopologySnapshot snapshot(model.graph);
  ASSERT_TRUE(snapshot.ok());
  const AnalysisOptions options;
  IncrementalAnalysis engine(snapshot, model.constraints, options);
  // Certify every admissible post-op state: the emitted certificate must
  // pass the independent checker after each incremental patch, or the
  // patching reassembled something the full analysis would not produce.
  engine.set_certify(true);
  std::mt19937_64 rng(seed * 977 + static_cast<std::uint64_t>(model_class));

  // The oracle: a full recompute over the same snapshot, constraint set
  // and overlay.  Mirroring through the engine's own constraint/overlay
  // accessors keeps the two paths in lockstep by construction.
  const auto check = [&](const char* op) {
    const GraphAnalysis full = compute_buffer_capacities(
        snapshot, engine.constraints(), options, engine.overlay());
    SCOPED_TRACE(std::string("after ") + op + ", class " +
                 std::to_string(static_cast<int>(model_class)) + ", seed " +
                 std::to_string(seed));
    expect_identical(engine.analysis(), full);
  };
  check("construction");

  const std::size_t n = model.graph.actor_count();
  const auto random_actor = [&]() {
    return ActorId(static_cast<ActorId::underlying_type>(rng() % n));
  };
  const auto constrained = [&](ActorId v) {
    for (const ThroughputConstraint& c : engine.constraints()) {
      if (c.actor == v) {
        return true;
      }
    }
    return false;
  };
  const dataflow::VrdfGraph::BufferView& view = snapshot.view();

  for (int step = 0; step < 12; ++step) {
    switch (rng() % 6) {
      case 0: {
        // Retune: mostly small ρ, occasionally huge to drive the
        // ρ-blocked shape (and its recovery on a later step).
        const bool blocking = rng() % 10 == 0;
        const std::int64_t num =
            1 + static_cast<std::int64_t>(rng() % (blocking ? 100000000 : 50));
        engine.retune(random_actor(), Duration(Rational(num, 100000)));
        check("retune");
        break;
      }
      case 1: {
        engine.clear_retune(random_actor());
        check("clear_retune");
        break;
      }
      case 2: {
        // Period move on a random serviced constraint: scale by a random
        // rational factor (shrinking periods drive ρ rejections).
        const std::size_t i = rng() % engine.constraints().size();
        const ThroughputConstraint c = engine.constraints()[i];
        const Rational factor(static_cast<std::int64_t>(1 + rng() % 5),
                              static_cast<std::int64_t>(1 + rng() % 5));
        engine.set_period(c.actor, Duration(c.period.seconds() * factor));
        check("set_period");
        break;
      }
      case 3: {
        // δ override on a random edge: classification-preserving on
        // on-cycle data edges, free on the rest; space-edge overrides
        // must be analysis-inert.
        const std::size_t pos = rng() % view.buffers.size();
        const bool space_side = rng() % 4 == 0;
        if (space_side) {
          engine.set_initial_tokens(view.buffers[pos].space,
                                    static_cast<std::int64_t>(rng() % 2000));
        } else {
          const dataflow::EdgeId data = view.buffers[pos].data;
          const std::int64_t current =
              model.graph.edge(data).initial_tokens;
          std::int64_t tokens;
          if (view.on_cycle[pos]) {
            tokens = current > 0
                         ? 1 + static_cast<std::int64_t>(
                                   rng() % static_cast<std::uint64_t>(
                                               current + 3))
                         : 0;
          } else {
            tokens = static_cast<std::int64_t>(rng() % 4);
          }
          engine.set_initial_tokens(data, tokens);
        }
        check("set_initial_tokens");
        break;
      }
      case 4: {
        // Admit: half the time at the actor's current φ (flow-consistent
        // — should be accepted), half at a random period (usually a
        // flow-consistency rejection shape).
        ActorId actor = random_actor();
        bool found = false;
        for (std::size_t tries = 0; tries < n; ++tries) {
          if (!constrained(actor)) {
            found = true;
            break;
          }
          actor = random_actor();
        }
        if (!found) {
          break;
        }
        const GraphAnalysis& current = engine.analysis();
        Duration period = Duration(
            Rational(static_cast<std::int64_t>(1 + rng() % 50), 1000));
        if (current.admissible && rng() % 2 == 0) {
          for (std::size_t i = 0; i < current.actors_in_order.size(); ++i) {
            if (current.actors_in_order[i] == actor) {
              period = current.pacing[i];
              break;
            }
          }
        }
        engine.admit(ThroughputConstraint{actor, period});
        check("admit");
        break;
      }
      default: {
        // Remove a random stream, keeping at least one (removal may
        // orphan a region — a coverage-rejection shape).
        if (engine.constraints().size() <= 1) {
          break;
        }
        const std::size_t i = rng() % engine.constraints().size();
        engine.remove(engine.constraints()[i].actor);
        check("remove");
        break;
      }
    }
  }
  EXPECT_EQ(engine.stats().certificate_violations, 0u)
      << "class " << static_cast<int>(model_class) << ", seed " << seed
      << ": "
      << (engine.last_certificate_violation().has_value()
              ? describe(*engine.last_certificate_violation())
              : std::string());
}

TEST(IncrementalDifferential, ChainSweepMatchesFullRecompute) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    run_differential_sequence(models::ModelClass::Chain, seed);
  }
}

TEST(IncrementalDifferential, ForkJoinSweepMatchesFullRecompute) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    run_differential_sequence(models::ModelClass::ForkJoin, seed);
  }
}

TEST(IncrementalDifferential, CyclicSweepMatchesFullRecompute) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    run_differential_sequence(models::ModelClass::Cyclic, seed);
  }
}

TEST(IncrementalDifferential, MultiConstraintSweepMatchesFullRecompute) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    run_differential_sequence(models::ModelClass::MultiConstraint, seed);
  }
}

TEST(IncrementalDifferential, InteriorPinnedSweepMatchesFullRecompute) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    run_differential_sequence(models::ModelClass::InteriorPinned, seed);
  }
}

// ------------------------------------------------------- MP3 anchor

TEST(AdmissionControl, Mp3NumbersServedIncrementally) {
  const models::Mp3Playback app = models::make_mp3_playback();
  const TopologySnapshot snapshot(app.graph);
  AdmissionController controller(snapshot, ConstraintSet{app.constraint});

  const auto expect_paper_numbers = [&]() {
    const GraphAnalysis& analysis = controller.analysis();
    ASSERT_TRUE(analysis.admissible);
    ASSERT_EQ(analysis.pairs.size(), 3u);
    EXPECT_EQ(analysis.pairs[0].capacity, 6015);
    EXPECT_EQ(analysis.pairs[1].capacity, 3263);
    EXPECT_EQ(analysis.pairs[2].capacity, 882);
  };
  expect_paper_numbers();

  // Retune the decoder to half its response time and back: both steps
  // ride the cached pacing, and the round trip restores the published
  // numbers exactly.
  const Duration original = app.graph.actor(app.mp3).response_time;
  const AdmissionDecision faster = controller.retune(
      app.mp3, Duration(original.seconds() * Rational(1, 2)));
  EXPECT_TRUE(faster.accepted);
  EXPECT_LE(faster.capacity_delta, 0);
  const AdmissionDecision back = controller.retune(app.mp3, original);
  EXPECT_TRUE(back.accepted);
  EXPECT_EQ(back.capacity_delta, -faster.capacity_delta);
  expect_paper_numbers();
  EXPECT_EQ(controller.engine().stats().pacing_recomputes, 1u);

  // Retuning the source touches exactly one ω and one pair on the chain.
  const AdmissionDecision br = controller.retune(
      app.br, Duration(app.graph.actor(app.br).response_time.seconds() *
                       Rational(1, 2)));
  EXPECT_TRUE(br.accepted);
  EXPECT_EQ(controller.engine().stats().last_cone_actors, 1u);
  EXPECT_EQ(controller.engine().stats().last_cone_pairs, 1u);

  const std::string summary = io::admission_summary(app.graph, controller);
  EXPECT_NE(summary.find("Admission-control service summary"),
            std::string::npos);
  EXPECT_NE(summary.find("pacing cache hits"), std::string::npos);
}

TEST(AdmissionControl, RejectionRollsBackStateAndNamesBindingConstraint) {
  const models::Mp3Playback app = models::make_mp3_playback();
  const TopologySnapshot snapshot(app.graph);
  AdmissionController controller(snapshot, ConstraintSet{app.constraint});
  const GraphAnalysis before = controller.analysis();

  // ρ far beyond the decoder's pacing: rejected, state untouched.
  const AdmissionDecision retune =
      controller.retune(app.mp3, seconds(Rational(1000)));
  EXPECT_FALSE(retune.accepted);
  EXPECT_EQ(retune.capacity_delta, 0);
  EXPECT_FALSE(retune.binding_constraint.empty());
  EXPECT_NE(retune.binding_constraint.find("response time"),
            std::string::npos);
  expect_identical(controller.analysis(), before);

  // A period too fast for the block reader's response time: rejected.
  const AdmissionDecision period = controller.set_period(
      app.constraint.actor,
      Duration(app.constraint.period.seconds() * Rational(1, 1000)));
  EXPECT_FALSE(period.accepted);
  EXPECT_FALSE(period.diagnostics.empty());
  expect_identical(controller.analysis(), before);

  // A second constraint whose period is flow-inconsistent: rejected and
  // rolled back; a flow-consistent one at the actor's own φ: accepted at
  // zero capacity delta, then removable again.
  const GraphAnalysis& current = controller.analysis();
  Duration phi_src;
  for (std::size_t i = 0; i < current.actors_in_order.size(); ++i) {
    if (current.actors_in_order[i] == app.src) {
      phi_src = current.pacing[i];
    }
  }
  const AdmissionDecision bad = controller.admit(
      ThroughputConstraint{app.src, seconds(Rational(1, 7))});
  EXPECT_FALSE(bad.accepted);
  EXPECT_FALSE(bad.binding_constraint.empty());
  expect_identical(controller.analysis(), before);
  const AdmissionDecision good =
      controller.admit(ThroughputConstraint{app.src, phi_src});
  EXPECT_TRUE(good.accepted);
  // The pin itself may shift schedule anchoring (and thus a capacity), but
  // the reported delta must account exactly for it.
  EXPECT_EQ(good.total_capacity, before.total_capacity + good.capacity_delta);
  ASSERT_EQ(controller.streams().size(), 2u);
  const AdmissionDecision stop = controller.remove(app.src);
  EXPECT_TRUE(stop.accepted);
  expect_identical(controller.analysis(), before);
}

TEST(AdmissionControl, RefusesInadmissibleInitialStateAndLastRemoval) {
  const models::Mp3Playback app = models::make_mp3_playback();
  const TopologySnapshot snapshot(app.graph);
  EXPECT_THROW(AdmissionController(
                   snapshot, ConstraintSet{ThroughputConstraint{
                                 app.dac, seconds(Rational(1, 1000000))}}),
               ContractError);
  AdmissionController controller(snapshot, ConstraintSet{app.constraint});
  EXPECT_THROW(controller.remove(app.dac), ContractError);
  EXPECT_THROW(controller.set_period(app.src, seconds(Rational(1))),
               ContractError);
  EXPECT_THROW(controller.admit(ThroughputConstraint{
                   app.dac, seconds(Rational(1, 100))}),
               ContractError);
}

// ------------------------------------------------- single-period rescale

TEST(IncrementalAnalysis, SingleConstraintPeriodRescaleIsBitIdentical) {
  const models::Mp3Playback app = models::make_mp3_playback();
  const TopologySnapshot snapshot(app.graph);
  const AnalysisOptions options;
  IncrementalAnalysis engine(snapshot, ConstraintSet{app.constraint},
                             options);
  const Rational factors[] = {Rational(2), Rational(1, 2), Rational(3, 7),
                              Rational(441, 480)};
  for (const Rational& f : factors) {
    engine.set_period(app.constraint.actor,
                      Duration(app.constraint.period.seconds() * f));
    const GraphAnalysis full = compute_buffer_capacities(
        snapshot, engine.constraints(), options, engine.overlay());
    expect_identical(engine.analysis(), full);
  }
  // Every move rode the rescale path: the only propagation was at
  // construction.
  EXPECT_EQ(engine.stats().pacing_recomputes, 1u);
  EXPECT_EQ(engine.stats().pacing_cache_hits, 4u);
}

// ------------------------------------------------------ δ override paths

TEST(IncrementalAnalysis, DeltaOverrideContractAndSpaceInertness) {
  models::RandomModelSpec spec;
  spec.model_class = models::ModelClass::Cyclic;
  spec.seed = 3;
  models::SyntheticModel model = models::make_random_model(spec);
  const TopologySnapshot snapshot(model.graph);
  ASSERT_TRUE(snapshot.ok());
  const dataflow::VrdfGraph::BufferView& view = snapshot.view();
  ASSERT_FALSE(view.feedback_buffers.empty());
  const std::size_t fb = view.feedback_buffers.front();

  IncrementalAnalysis engine(snapshot, model.constraints);
  const GraphAnalysis before = engine.analysis();

  // Zeroing a feedback credit would re-classify the cycle: refused, and
  // the contract error names the edge.
  try {
    engine.set_initial_tokens(view.buffers[fb].data, 0);
    FAIL() << "expected ContractError";
  } catch (const ContractError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("feedback classification"), std::string::npos);
    EXPECT_NE(
        what.find(
            model.graph.actor(model.graph.edge(view.buffers[fb].data).source)
                .name),
        std::string::npos);
  }

  // A space-edge override is inert for the sized analysis.
  engine.set_initial_tokens(view.buffers[fb].space, 123456);
  expect_identical(engine.analysis(), before);

  // Raising the feedback credit re-analyses just that pair.
  const std::int64_t credit =
      model.graph.edge(view.buffers[fb].data).initial_tokens + 2;
  engine.set_initial_tokens(view.buffers[fb].data, credit);
  EXPECT_EQ(engine.stats().last_cone_pairs, 1u);
  const GraphAnalysis full =
      compute_buffer_capacities(snapshot, engine.constraints(),
                                engine.options(), engine.overlay());
  expect_identical(engine.analysis(), full);
}

// ------------------------------------------------------- stale contracts

TEST(IncrementalAnalysis, StaleSnapshotThrowsNamingTheMutation) {
  models::RandomModelSpec spec;
  spec.model_class = models::ModelClass::Chain;
  spec.seed = 7;
  models::SyntheticModel model = models::make_random_model(spec);
  const TopologySnapshot snapshot(model.graph);
  IncrementalAnalysis engine(snapshot, model.constraints);
  (void)engine.analysis();

  const ActorId victim = model.constraints.front().actor;
  model.graph.set_response_time(victim, seconds(Rational(1, 1000000)));
  try {
    (void)engine.analysis();
    FAIL() << "expected ContractError";
  } catch (const ContractError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("stale"), std::string::npos);
    EXPECT_NE(what.find("set_response_time on actor"), std::string::npos);
    EXPECT_NE(what.find(model.graph.actor(victim).name), std::string::npos);
  }
  EXPECT_THROW(engine.retune(victim, seconds(Rational(1))), ContractError);
  EXPECT_THROW(engine.set_period(victim, seconds(Rational(1))),
               ContractError);

  // Edge mutations are named too, and captured snapshots refuse fresh
  // engines as well.
  const dataflow::EdgeId edge = snapshot.view().buffers.front().data;
  model.graph.set_initial_tokens(edge, 5);
  try {
    IncrementalAnalysis late(snapshot, model.constraints);
    FAIL() << "expected ContractError";
  } catch (const ContractError& e) {
    EXPECT_NE(std::string(e.what()).find("set_initial_tokens on edge"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace vrdf::analysis
