// Multiple simultaneous throughput constraints: bidirectional pacing with
// per-constraint admissibility — hand-checked capacities on the dual-sink
// A/V pipeline, flow-consistency rejections with binding constraint +
// path, collapse-to-single-constraint equivalence, pinned source+sink,
// multi-sink random sweeps through the two-phase harness, the designated
// min-period solver, and the multi-constraint io surfaces.
#include <gtest/gtest.h>

#include "analysis/buffer_sizing.hpp"
#include "analysis/pacing.hpp"
#include "analysis/period.hpp"
#include "io/dot.hpp"
#include "io/report.hpp"
#include "io/text_format.hpp"
#include "models/mp3.hpp"
#include "models/synthetic.hpp"
#include "sim/fleet.hpp"
#include "sim/verify.hpp"
#include "util/error.hpp"

namespace vrdf::analysis {
namespace {

using dataflow::ActorId;
using dataflow::RateSet;
using dataflow::VrdfGraph;

// ------------------------------------------------- dual-sink A/V pipeline

TEST(MultiConstraint, DualSinkAvPipelineHandComputedCapacities) {
  models::AvDualSinkPipeline app = models::make_av_dual_sink_pipeline();
  const GraphAnalysis sized =
      compute_buffer_capacities(app.graph, app.constraints);
  ASSERT_TRUE(sized.admissible)
      << (sized.diagnostics.empty() ? "" : sized.diagnostics[0]);
  ASSERT_EQ(sized.pairs.size(), 5u);
  ASSERT_EQ(sized.constraints.size(), 2u);
  EXPECT_FALSE(sized.is_chain);
  EXPECT_FALSE(sized.is_cyclic);

  // Gears 4/2/3/8/3/8 with λ = 5 ms: φ(src) 20 ms, φ(demux) 10 ms,
  // φ(adec) 15 ms, φ(vdec) 40 ms, φ(apresent) = τ_a = 15 ms,
  // φ(vpresent) = τ_v = 40 ms — every bound rate is 5 ms per token.
  for (std::size_t i = 0; i < sized.actors_in_order.size(); ++i) {
    const std::string& name = app.graph.actor(sized.actors_in_order[i]).name;
    const Rational phi = sized.pacing[i].seconds();
    if (name == "src") {
      EXPECT_EQ(phi, Rational(1, 50));
    } else if (name == "demux") {
      EXPECT_EQ(phi, Rational(1, 100));
    } else if (name == "adec" || name == "apresent") {
      EXPECT_EQ(phi, Rational(3, 200));
    } else {
      EXPECT_EQ(phi, Rational(1, 25));
    }
  }

  // Hand computation at tight response times ρ(v) = φ(v), s = 5 ms:
  //   ω(apresent) = ω(vpresent) = 0 (the anchors)
  //   ω(adec) = 15 + 5·(3−1)          = 25 ms
  //   ω(vdec) = 40 + 5·(8−1)          = 75 ms
  //   ω(demux) = 10 + max(25+5, 75+5) = 90 ms  (video path binds)
  //   ω(src)  = 20 + (90 + 5·(4−1))   = 125 ms
  // Pair x: Δ_producer = max(ω gap, ρ_p + s·(π̂−1)), Δ_consumer =
  // ρ_c + s·(γ̂−1); capacity = ⌊Δ/s⌋ + 1, except the static pairs at the
  // constrained presenters, which take the tight ⌈Δ/s⌉:
  //   src→demux:      max(35,35)+10+5  → x=10 → 11
  //   demux→adec:     max(65,15)+15+10 → x=18 → 19
  //   demux→vdec:     max(15,15)+40+35 → x=18 → 19
  //   adec→apresent:  max(25,25)+15+10 → x=10 → 10 (tight)
  //   vdec→vpresent:  max(75,75)+40+35 → x=30 → 30 (tight)
  for (const PairAnalysis& pair : sized.pairs) {
    EXPECT_EQ(pair.determined_by, ConstraintSide::Sink);
    const std::string name = app.graph.actor(pair.producer).name + "->" +
                             app.graph.actor(pair.consumer).name;
    if (name == "src->demux") {
      EXPECT_EQ(pair.capacity, 11) << name;
    } else if (name == "demux->adec" || name == "demux->vdec") {
      EXPECT_EQ(pair.capacity, 19) << name;
    } else if (name == "adec->apresent") {
      EXPECT_EQ(pair.capacity, 10) << name;
    } else {
      EXPECT_EQ(name, "vdec->vpresent");
      EXPECT_EQ(pair.capacity, 30) << name;
    }
  }
  EXPECT_EQ(sized.total_capacity, 89);
}

TEST(MultiConstraint, DualSinkSurvivesTwoPhaseSimulation) {
  models::AvDualSinkPipeline app = models::make_av_dual_sink_pipeline();
  const GraphAnalysis sized =
      compute_buffer_capacities(app.graph, app.constraints);
  ASSERT_TRUE(sized.admissible);
  apply_capacities(app.graph, sized);
  sim::VerifyOptions options;
  options.observe_firings = 1000;
  const sim::VerifyResult verdict =
      sim::verify_throughput(app.graph, app.constraints, {}, options);
  EXPECT_TRUE(verdict.ok) << verdict.detail;
  EXPECT_EQ(verdict.starvation_count, 0);
}

// ------------------------------------------------ collapse to one constraint

TEST(MultiConstraint, SetOfOneCollapsesToSingleConstraintBitForBit) {
  // The MP3 chain, a random fork-join and a random cyclic model must be
  // identical through the set-of-one path, field by field.
  const auto expect_identical = [](const VrdfGraph& graph,
                                   const ThroughputConstraint& constraint) {
    const GraphAnalysis a = compute_buffer_capacities(graph, constraint);
    const GraphAnalysis b =
        compute_buffer_capacities(graph, ConstraintSet{constraint});
    ASSERT_EQ(a.admissible, b.admissible);
    ASSERT_EQ(a.diagnostics, b.diagnostics);
    ASSERT_EQ(a.side, b.side);
    ASSERT_EQ(a.pacing, b.pacing);
    ASSERT_EQ(a.pairs.size(), b.pairs.size());
    for (std::size_t i = 0; i < a.pairs.size(); ++i) {
      EXPECT_EQ(a.pairs[i].capacity, b.pairs[i].capacity);
      EXPECT_EQ(a.pairs[i].raw_tokens, b.pairs[i].raw_tokens);
      EXPECT_EQ(a.pairs[i].delta_producer, b.pairs[i].delta_producer);
      EXPECT_EQ(a.pairs[i].delta_consumer, b.pairs[i].delta_consumer);
      EXPECT_EQ(a.pairs[i].determined_by, b.pairs[i].determined_by);
      EXPECT_EQ(a.pairs[i].required_initial_tokens,
                b.pairs[i].required_initial_tokens);
    }
    EXPECT_EQ(a.total_capacity, b.total_capacity);
  };

  const models::Mp3Playback mp3 = models::make_mp3_playback();
  expect_identical(mp3.graph, mp3.constraint);
  {
    const GraphAnalysis sized = compute_buffer_capacities(
        mp3.graph, ConstraintSet{mp3.constraint});
    ASSERT_TRUE(sized.admissible);
    ASSERT_EQ(sized.pairs.size(), 3u);
    EXPECT_EQ(sized.pairs[0].capacity, 6015);
    EXPECT_EQ(sized.pairs[1].capacity, 3263);
    EXPECT_EQ(sized.pairs[2].capacity, 882);
  }

  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    models::RandomForkJoinSpec fj;
    fj.seed = seed;
    fj.stages = 1 + seed % 2;
    fj.source_constrained = seed % 2 == 0;
    const models::SyntheticChain model = models::make_random_fork_join(fj);
    expect_identical(model.graph, model.constraint);

    models::RandomCyclicSpec cy;
    cy.base.seed = seed;
    const models::SyntheticChain cyclic = models::make_random_cyclic(cy);
    expect_identical(cyclic.graph, cyclic.constraint);
  }
}

// ----------------------------------------------------- rejection diagnostics

TEST(MultiConstraint, SlowSeededSourceRejectedWithBindingConstraintAndPath) {
  // src* → mid → snk*, static rates, flow-consistent at τ_src = 2 ms;
  // seeding src slower starves snk — the diagnostic names the binding
  // constraint and the propagation path.
  VrdfGraph g;
  const ActorId src = g.add_actor("src", milliseconds(Rational(1, 2)));
  const ActorId mid = g.add_actor("mid", milliseconds(Rational(1, 2)));
  const ActorId snk = g.add_actor("snk", milliseconds(Rational(1, 2)));
  (void)g.add_buffer(src, mid, RateSet::singleton(2), RateSet::singleton(1));
  (void)g.add_buffer(mid, snk, RateSet::singleton(1), RateSet::singleton(2));

  const ConstraintSet good = {
      ThroughputConstraint{src, milliseconds(Rational(2))},
      ThroughputConstraint{snk, milliseconds(Rational(2))}};
  EXPECT_TRUE(compute_pacing(g, good).ok);

  const ConstraintSet slow = {
      ThroughputConstraint{src, milliseconds(Rational(3))},
      ThroughputConstraint{snk, milliseconds(Rational(2))}};
  const PacingResult rejected = compute_pacing(g, slow);
  ASSERT_FALSE(rejected.ok);
  ASSERT_FALSE(rejected.diagnostics.empty());
  EXPECT_NE(rejected.diagnostics[0].find("exceeds the pacing"),
            std::string::npos)
      << rejected.diagnostics[0];
  EXPECT_NE(rejected.diagnostics[0].find("constraint on 'snk'"),
            std::string::npos)
      << rejected.diagnostics[0];
  EXPECT_NE(rejected.diagnostics[0].find("src -> mid -> snk"),
            std::string::npos)
      << rejected.diagnostics[0];
  EXPECT_NE(rejected.diagnostics[0].find("starve"), std::string::npos);
}

TEST(MultiConstraint, FastSeededSourceRejectedAsNotFlowConsistent) {
  VrdfGraph g;
  const ActorId src = g.add_actor("src", milliseconds(Rational(1, 2)));
  const ActorId snk = g.add_actor("snk", milliseconds(Rational(1, 2)));
  (void)g.add_buffer(src, snk, RateSet::singleton(1), RateSet::singleton(1));
  const ConstraintSet fast = {
      ThroughputConstraint{src, milliseconds(Rational(1))},
      ThroughputConstraint{snk, milliseconds(Rational(2))}};
  const PacingResult rejected = compute_pacing(g, fast);
  ASSERT_FALSE(rejected.ok);
  ASSERT_FALSE(rejected.diagnostics.empty());
  EXPECT_NE(rejected.diagnostics[0].find("undercuts the pacing"),
            std::string::npos)
      << rejected.diagnostics[0];
  EXPECT_NE(rejected.diagnostics[0].find("accumulate without bound"),
            std::string::npos);
}

TEST(MultiConstraint, InconsistentSinkPeriodsConflictAtTheSharedFork) {
  // Doubling the video period breaks flow consistency at the shared
  // demultiplexer; the conflict names both constraints and their paths.
  models::AvDualSinkPipeline app = models::make_av_dual_sink_pipeline();
  ConstraintSet skewed = app.constraints;
  skewed[1].period = milliseconds(Rational(80));
  const PacingResult rejected = compute_pacing(app.graph, skewed);
  ASSERT_FALSE(rejected.ok);
  ASSERT_FALSE(rejected.diagnostics.empty());
  EXPECT_NE(rejected.diagnostics[0].find("conflicting pacing demands"),
            std::string::npos)
      << rejected.diagnostics[0];
  EXPECT_NE(rejected.diagnostics[0].find("'apresent'"), std::string::npos);
  EXPECT_NE(rejected.diagnostics[0].find("'vpresent'"), std::string::npos);
  EXPECT_NE(rejected.diagnostics[0].find("not flow-consistent"),
            std::string::npos);
}

TEST(MultiConstraint, UnconstrainedEndIsRejectedAsUnpaced) {
  // Two sinks, only one constrained: the other branch receives no demand.
  models::AvDualSinkPipeline app = models::make_av_dual_sink_pipeline();
  const ConstraintSet only_audio = {app.constraints[0]};
  const PacingResult rejected = compute_pacing(app.graph, only_audio);
  ASSERT_FALSE(rejected.ok);
  ASSERT_FALSE(rejected.diagnostics.empty());
  // The single-constraint path keeps its uniqueness diagnostic.
  EXPECT_NE(rejected.diagnostics[0].find("unique data sink"),
            std::string::npos)
      << rejected.diagnostics[0];

  // A genuinely multi-constraint set with an unpinned third end.
  VrdfGraph g;
  const ActorId src = g.add_actor("src", milliseconds(Rational(1, 2)));
  const ActorId a = g.add_actor("a", milliseconds(Rational(1, 2)));
  const ActorId b = g.add_actor("b", milliseconds(Rational(1, 2)));
  const ActorId c = g.add_actor("c", milliseconds(Rational(1, 2)));
  (void)g.add_buffer(src, a, RateSet::singleton(1), RateSet::singleton(1));
  (void)g.add_buffer(src, b, RateSet::singleton(1), RateSet::singleton(1));
  (void)g.add_buffer(src, c, RateSet::singleton(1), RateSet::singleton(1));
  const ConstraintSet two_of_three = {
      ThroughputConstraint{a, milliseconds(Rational(2))},
      ThroughputConstraint{b, milliseconds(Rational(2))}};
  const PacingResult unpaced = compute_pacing(g, two_of_three);
  ASSERT_FALSE(unpaced.ok);
  ASSERT_FALSE(unpaced.diagnostics.empty());
  EXPECT_NE(unpaced.diagnostics[0].find("'c'"), std::string::npos)
      << unpaced.diagnostics[0];
  EXPECT_NE(unpaced.diagnostics[0].find("no pacing demand"),
            std::string::npos);
}

TEST(MultiConstraint, EdgePacedByNoConstraintRejected) {
  // Actor coverage alone is not enough: s->a, p->a, p->k with a pinned
  // source s and a pinned sink k covers every actor (p via p->k, a via
  // s->a), yet no constraint relates the rates across p->a — p would
  // produce into it at 1 token / 2 ms while a drains at 1 token / 5 ms.
  // Sizing it anyway starves the harness; the analysis must reject.
  VrdfGraph g;
  const ActorId s = g.add_actor("s", milliseconds(Rational(1)));
  const ActorId p = g.add_actor("p", milliseconds(Rational(1)));
  const ActorId a = g.add_actor("a", milliseconds(Rational(1)));
  const ActorId k = g.add_actor("k", milliseconds(Rational(1)));
  (void)g.add_buffer(s, a, RateSet::singleton(1), RateSet::singleton(1));
  (void)g.add_buffer(p, a, RateSet::singleton(1), RateSet::singleton(1));
  (void)g.add_buffer(p, k, RateSet::singleton(1), RateSet::singleton(1));
  const ConstraintSet constraints = {
      ThroughputConstraint{s, milliseconds(Rational(5))},
      ThroughputConstraint{k, milliseconds(Rational(2))}};
  const PacingResult rejected = compute_pacing(g, constraints);
  ASSERT_FALSE(rejected.ok);
  ASSERT_FALSE(rejected.diagnostics.empty());
  EXPECT_NE(rejected.diagnostics[0].find("buffer p -> a"), std::string::npos)
      << rejected.diagnostics[0];
  EXPECT_NE(rejected.diagnostics[0].find("paced by no throughput constraint"),
            std::string::npos);
  const GraphAnalysis sized = compute_buffer_capacities(g, constraints);
  EXPECT_FALSE(sized.admissible);
}

TEST(MultiConstraint, DuplicateAndEmptyConstraintsRejected) {
  models::AvDualSinkPipeline app = models::make_av_dual_sink_pipeline();
  const ConstraintSet duplicate = {app.constraints[0], app.constraints[0]};
  const PacingResult dup = compute_pacing(app.graph, duplicate);
  ASSERT_FALSE(dup.ok);
  EXPECT_NE(dup.diagnostics[0].find("duplicate throughput constraint"),
            std::string::npos);

  // PR 5: an interior pin is a valid constraint.  Adding the shared
  // demultiplexer at its flow-consistent period (φ(demux) = 10 ms) now
  // *succeeds* — the old "is interior" rejection is gone — while a
  // flow-inconsistent interior period is still rejected as a seed
  // violation, not as "interior".
  ConstraintSet interior = app.constraints;
  interior.push_back(
      ThroughputConstraint{app.demux, milliseconds(Rational(10))});
  const PacingResult inner = compute_pacing(app.graph, interior);
  EXPECT_TRUE(inner.ok) << (inner.diagnostics.empty()
                                ? ""
                                : inner.diagnostics[0]);
  ConstraintSet skewed_interior = app.constraints;
  skewed_interior.push_back(
      ThroughputConstraint{app.demux, milliseconds(Rational(12))});
  const PacingResult skewed = compute_pacing(app.graph, skewed_interior);
  ASSERT_FALSE(skewed.ok);
  ASSERT_FALSE(skewed.diagnostics.empty());
  EXPECT_EQ(skewed.diagnostics[0].find("interior"), std::string::npos)
      << skewed.diagnostics[0];
  EXPECT_NE(skewed.diagnostics[0].find("'demux'"), std::string::npos)
      << skewed.diagnostics[0];

  const PacingResult empty = compute_pacing(app.graph, ConstraintSet{});
  ASSERT_FALSE(empty.ok);
  EXPECT_NE(empty.diagnostics[0].find("must not be empty"), std::string::npos);
}

// ----------------------------------------------------- pinned source + sink

TEST(MultiConstraint, PinnedSourceAndSinkChainVerifiedBySimulation) {
  // Both ends strictly periodic on a static, flow-balanced chain: the
  // analysis accepts the exact periods and the capacities sustain phase-2
  // enforcement of *both* grids.
  VrdfGraph g;
  const ActorId src = g.add_actor("src", milliseconds(Rational(1)));
  const ActorId mid = g.add_actor("mid", milliseconds(Rational(1, 2)));
  const ActorId snk = g.add_actor("snk", milliseconds(Rational(1)));
  (void)g.add_buffer(src, mid, RateSet::singleton(4), RateSet::singleton(2));
  (void)g.add_buffer(mid, snk, RateSet::singleton(2), RateSet::singleton(4));
  const ConstraintSet pinned = {
      ThroughputConstraint{src, milliseconds(Rational(2))},
      ThroughputConstraint{snk, milliseconds(Rational(2))}};
  const GraphAnalysis sized = compute_buffer_capacities(g, pinned);
  ASSERT_TRUE(sized.admissible)
      << (sized.diagnostics.empty() ? "" : sized.diagnostics[0]);
  apply_capacities(g, sized);
  const sim::VerifyResult verdict = sim::verify_throughput(g, pinned);
  EXPECT_TRUE(verdict.ok) << verdict.detail;
  EXPECT_EQ(verdict.starvation_count, 0);
}

TEST(MultiConstraint, FeedbackPipelineWithPinnedSourceAndSink) {
  // A credit loop with both its skeleton source (the rate controller) and
  // its sink (the presenter) pinned: src emits 4 blocks per credit batch,
  // dec decodes 2, present consumes composed frames of 4 strictly
  // periodically at 25 Hz, and dec reports consumed blocks back to rctl
  // through a tokened back-edge.  All rates are static and flow-exact —
  // the constraint-coupling rule demands it when a pinned source sits
  // upstream.  φ: rctl 10 ms, src 40 ms, dec 20 ms, present 40 ms.
  VrdfGraph bare;
  const Duration dummy = seconds(Rational(1));
  const ActorId src = bare.add_actor("src", dummy);
  const ActorId dec = bare.add_actor("dec", dummy);
  const ActorId present = bare.add_actor("present", dummy);
  const ActorId rctl = bare.add_actor("rctl", dummy);
  (void)bare.add_buffer(src, dec, RateSet::singleton(4), RateSet::singleton(2));
  (void)bare.add_buffer(dec, present, RateSet::singleton(2),
                        RateSet::singleton(4));
  const dataflow::BufferEdges dec_rctl =
      bare.add_buffer(dec, rctl, RateSet::singleton(2), RateSet::singleton(1),
                      /*capacity=*/0, /*initial_tokens=*/1);
  (void)bare.add_buffer(rctl, src, RateSet::singleton(1),
                        RateSet::singleton(4));
  const ConstraintSet both = {
      ThroughputConstraint{present, milliseconds(Rational(40))},
      ThroughputConstraint{rctl, milliseconds(Rational(10))}};
  auto scaled = models::with_scaled_response_times(bare, both, Rational(1));
  ASSERT_TRUE(scaled.has_value());
  VrdfGraph graph = std::move(*scaled);

  // Size the loop's circulating tokens from the analysis' own requirement
  // (δ-independent), then re-analyse.
  const GraphAnalysis probe = compute_buffer_capacities(graph, both);
  ASSERT_FALSE(probe.pairs.empty());
  for (const PairAnalysis& pair : probe.pairs) {
    if (pair.is_feedback) {
      EXPECT_EQ(pair.buffer.data, dec_rctl.data);
      graph.set_initial_tokens(pair.buffer.data,
                               pair.required_initial_tokens + 2);
    }
  }
  const GraphAnalysis sized = compute_buffer_capacities(graph, both);
  ASSERT_TRUE(sized.admissible)
      << (sized.diagnostics.empty() ? "" : sized.diagnostics[0]);
  EXPECT_TRUE(sized.is_cyclic);
  apply_capacities(graph, sized);
  const sim::VerifyResult verdict = sim::verify_throughput(graph, both);
  EXPECT_TRUE(verdict.ok) << verdict.detail;
  EXPECT_EQ(verdict.starvation_count, 0);
}

TEST(MultiConstraint, VariableRatesOnCoupledBranchesRejected) {
  // A fork serving two constrained sinks: a zero-tolerant consumption set
  // on one branch would let that presenter's realized drain fall below
  // its worst case, fill the branch, block the fork and starve the
  // sibling — rejected as constraint-coupled, at any capacity.
  VrdfGraph g;
  const ActorId fork = g.add_actor("fork", milliseconds(Rational(1)));
  const ActorId sa = g.add_actor("sa", milliseconds(Rational(2)));
  const ActorId sb = g.add_actor("sb", milliseconds(Rational(2)));
  (void)g.add_buffer(fork, sa, RateSet::singleton(1), RateSet::of({0, 1}));
  (void)g.add_buffer(fork, sb, RateSet::singleton(1), RateSet::singleton(1));
  const ConstraintSet constraints = {
      ThroughputConstraint{sa, milliseconds(Rational(2))},
      ThroughputConstraint{sb, milliseconds(Rational(2))}};
  const PacingResult rejected = compute_pacing(g, constraints);
  ASSERT_FALSE(rejected.ok);
  ASSERT_FALSE(rejected.diagnostics.empty());
  EXPECT_NE(rejected.diagnostics[0].find("constraint-coupled"),
            std::string::npos)
      << rejected.diagnostics[0];
  EXPECT_NE(rejected.diagnostics[0].find("fork -> sa"), std::string::npos);
}

// ------------------------------------------------- random multi-sink sweep

// The published per-seed shape schedule of the PR 4 sweep — kept as the
// fleet's custom generator so seed N still yields the same graph.
models::SyntheticMultiConstraint make_sweep_multi_sink(std::uint64_t seed) {
  models::RandomMultiSinkSpec spec;
  spec.seed = seed;
  spec.sinks = 2 + seed % 3;
  spec.max_branch_length = 1 + seed % 3;
  spec.max_prefix_length = seed % 3;
  spec.variable_percent = 60;
  spec.zero_percent = 25;
  return models::make_random_multi_sink(spec);
}

TEST(MultiConstraint, RandomMultiSinkGraphsSustainPeriodicExecution) {
  // The acceptance check, through the fleet harness (PR 8): 60 random
  // multi-sink graphs — up from 40 — pass the two-phase simulation
  // harness with zero phase-2 starvations, every sink enforced strictly
  // periodic at once.
  sim::SweepSpec spec;
  spec.classes = {models::ModelClass::MultiConstraint};
  spec.seeds_per_class = 60;
  spec.observe_firings = 400;
  spec.generator = [](const sim::FleetItem& item) {
    models::SyntheticMultiConstraint generated =
        make_sweep_multi_sink(item.seed_ordinal);
    models::SyntheticModel model;
    model.graph = std::move(generated.graph);
    model.constraints = std::move(generated.constraints);
    return model;
  };
  const sim::FleetReport report = sim::FleetSweep(spec).run(4);
  EXPECT_EQ(report.total_items, 60);
  EXPECT_EQ(report.passed, report.total_items) << sim::canonical_text(report);
  EXPECT_EQ(report.failed + report.rejected, 0);
  EXPECT_EQ(report.starvations, 0);

  // The structural claim the old loop also made: each generated graph
  // really carries at least two sinks (the fleet only checks verdicts).
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    EXPECT_GE(make_sweep_multi_sink(seed).constraints.size(), 2u)
        << "seed " << seed;
  }
}

// --------------------------------------------- designated min-period solver

TEST(MultiConstraint, MinPeriodScalesDesignatedConstraintAgainstFixedOnes) {
  models::AvDualSinkPipeline app = models::make_av_dual_sink_pipeline();
  const GraphAnalysis sized =
      compute_buffer_capacities(app.graph, app.constraints);
  ASSERT_TRUE(sized.admissible);
  apply_capacities(app.graph, sized);

  // With the audio presenter fixed at 15 ms, flow consistency pins the
  // video presenter to exactly 40 ms.
  const MinPeriodResult coupled =
      min_admissible_period(app.graph, app.constraints, app.vpresent);
  ASSERT_TRUE(coupled.ok) << (coupled.diagnostics.empty()
                                  ? ""
                                  : coupled.diagnostics[0]);
  EXPECT_EQ(coupled.min_period, milliseconds(Rational(40)));
  EXPECT_EQ(coupled.infimum_period, coupled.min_period);
  EXPECT_TRUE(coupled.infimum_attained);
  EXPECT_NE(coupled.binding_constraint.find("flow-coupling"),
            std::string::npos);

  // Starving the installed capacities makes the coupled period infeasible.
  VrdfGraph strangled = app.graph;
  strangled.set_initial_tokens(app.vdec_vpresent.space, 1);
  const MinPeriodResult infeasible =
      min_admissible_period(strangled, app.constraints, app.vpresent);
  EXPECT_FALSE(infeasible.ok);
  ASSERT_FALSE(infeasible.diagnostics.empty());

  // An actor without a constraint in the set is a usage error.
  const MinPeriodResult unknown =
      min_admissible_period(app.graph, app.constraints, app.demux);
  EXPECT_FALSE(unknown.ok);
  EXPECT_NE(unknown.diagnostics[0].find("no constraint"), std::string::npos);
}

// ----------------------------------------------------------- io round trips

TEST(MultiConstraint, TextFormatRoundTripsConstraintSets) {
  models::AvDualSinkPipeline app = models::make_av_dual_sink_pipeline();
  const GraphAnalysis sized =
      compute_buffer_capacities(app.graph, app.constraints);
  ASSERT_TRUE(sized.admissible);
  apply_capacities(app.graph, sized);

  const std::string text = io::write_chain(app.graph, app.constraints);
  EXPECT_NE(text.find("constraint apresent period=3/200"), std::string::npos)
      << text;
  EXPECT_NE(text.find("constraint vpresent period=1/25"), std::string::npos);

  const io::ChainDocument parsed = io::read_chain(text);
  ASSERT_EQ(parsed.constraints.size(), 2u);
  ASSERT_TRUE(parsed.constraint.has_value());
  EXPECT_EQ(parsed.constraint->period, milliseconds(Rational(15)));
  const GraphAnalysis reparsed =
      compute_buffer_capacities(parsed.graph, parsed.constraints);
  ASSERT_TRUE(reparsed.admissible);
  EXPECT_EQ(reparsed.total_capacity, sized.total_capacity);
}

TEST(MultiConstraint, TextFormatRejectsMalformedIntegersWithLineNumbers) {
  const auto expect_rejected = [](const std::string& text,
                                  const std::string& needle) {
    try {
      (void)io::read_chain(text);
      FAIL() << "expected rejection of: " << text;
    } catch (const ModelError& e) {
      EXPECT_NE(std::string(e.what()).find("line "), std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  const std::string header =
      "vrdf-chain v1\nactor a rho=0.001\nactor b rho=0.001\n";
  // Overflowing and non-numeric integers must produce parse diagnostics,
  // not std::out_of_range / std::invalid_argument aborts.
  expect_rejected(
      header + "buffer a -> b pi={1} gamma={1} capacity=9999999999999999999\n",
      "out of range");
  expect_rejected(header + "buffer a -> b pi={1} gamma={1} delta=abc\n",
                  "malformed delta");
  expect_rejected(header + "buffer a -> b pi={1} gamma={1} capacity=12abc\n",
                  "trailing characters");
  expect_rejected(header + "buffer a -> b pi={1,x} gamma={1}\n",
                  "malformed rate value");
  expect_rejected(header + "buffer a -> b pi={99999999999999999999} gamma={1}\n",
                  "out of range");
  expect_rejected(header + "buffer a -> b pi={1} gamma={1} zeta=3\n",
                  "unknown attribute");
  expect_rejected("vrdf-chain v1\nactor a rho=oops\n", "malformed rho");
  expect_rejected(header +
                      "buffer a -> b pi={1} gamma={1}\n"
                      "constraint b period=nope\n",
                  "malformed period");
  // Duplicate constraint lines for the same actor are rejected; distinct
  // actors accumulate into the set.
  expect_rejected(header +
                      "buffer a -> b pi={1} gamma={1}\n"
                      "constraint b period=0.002\n"
                      "constraint b period=0.004\n",
                  "duplicate constraint");
}

TEST(MultiConstraint, DotDoubleBordersEveryConstrainedActor) {
  models::AvDualSinkPipeline app = models::make_av_dual_sink_pipeline();
  const GraphAnalysis sized =
      compute_buffer_capacities(app.graph, app.constraints);
  ASSERT_TRUE(sized.admissible);
  apply_capacities(app.graph, sized);
  const std::string dot = io::to_dot(app.graph, app.constraints, sized);
  std::size_t borders = 0;
  for (std::size_t at = dot.find("peripheries=2"); at != std::string::npos;
       at = dot.find("peripheries=2", at + 1)) {
    ++borders;
  }
  EXPECT_EQ(borders, 2u) << dot;
  EXPECT_NE(dot.find("tau=3/200 s"), std::string::npos);
  EXPECT_NE(dot.find("tau=1/25 s"), std::string::npos);
  EXPECT_EQ(dot.find("(!)"), std::string::npos);
}

TEST(MultiConstraint, ReportListsAllConstraints) {
  models::AvDualSinkPipeline app = models::make_av_dual_sink_pipeline();
  const GraphAnalysis sized =
      compute_buffer_capacities(app.graph, app.constraints);
  ASSERT_TRUE(sized.admissible);
  apply_capacities(app.graph, sized);
  const std::string report =
      io::analysis_report(app.graph, app.constraints, sized);
  EXPECT_NE(report.find("Throughput constraints (2)"), std::string::npos)
      << report;
  EXPECT_NE(report.find("`apresent`"), std::string::npos);
  EXPECT_NE(report.find("`vpresent`"), std::string::npos);
  EXPECT_NE(report.find("Deadlock-free floor"), std::string::npos);
  EXPECT_NE(report.find("## Rate headroom"), std::string::npos);
  EXPECT_NE(report.find("flow-coupling"), std::string::npos);
}

TEST(MultiConstraint, VerifyRejectsDuplicateConstrainedActors) {
  // verify_throughput is an independent entry point: a duplicate actor
  // would silently overwrite the first enforced grid and "verify" only
  // the last period.  It must fail loudly instead.
  models::AvDualSinkPipeline app = models::make_av_dual_sink_pipeline();
  const GraphAnalysis sized =
      compute_buffer_capacities(app.graph, app.constraints);
  ASSERT_TRUE(sized.admissible);
  apply_capacities(app.graph, sized);
  const ConstraintSet duplicate = {
      app.constraints[0],
      ThroughputConstraint{app.constraints[0].actor,
                           milliseconds(Rational(30))}};
  EXPECT_THROW((void)sim::verify_throughput(app.graph, duplicate),
               ContractError);
}

// ----------------------------------------------------- pacing_of hardening

TEST(MultiConstraint, PacingOfMisuseFailsLoudly) {
  models::AvDualSinkPipeline app = models::make_av_dual_sink_pipeline();
  const PacingResult pacing = compute_pacing(app.graph, app.constraints);
  ASSERT_TRUE(pacing.ok);
  // In-range actors resolve; an id beyond the graph is a contract error
  // instead of an out-of-bounds read.
  EXPECT_TRUE(pacing.pacing_of(app.demux).is_positive());
  const ActorId bogus(static_cast<ActorId::underlying_type>(
      app.graph.actor_count() + 17));
  EXPECT_THROW((void)pacing.pacing_of(bogus), ContractError);
}

}  // namespace
}  // namespace vrdf::analysis
