// Shared-platform deployment arc (PR 10): hand-computed 2-processor TDM
// deployment with exact derived κ and locked capacities, round-robin
// peer coupling, latency-rate conservatism end-to-end, the ≥40-seed
// randomized differential slot-retune sweep (DeploymentController vs a
// full recompute over the same snapshot/constraints/overlay),
// certificate platform-clause validation with a per-term tamper matrix,
// wheel-binding vs throughput-binding rejections with exact rollback,
// randomized deployments verified through the two-phase harness at zero
// starvations, and the frontier sweep's thread-count determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "analysis/buffer_sizing.hpp"
#include "analysis/deployment.hpp"
#include "io/report.hpp"
#include "sim/deployment_frontier.hpp"
#include "sim/verify.hpp"
#include "util/error.hpp"

namespace vrdf::analysis {
namespace {

using dataflow::RateSet;

Duration us(std::int64_t n) { return milliseconds(Rational(n, 1000)); }

// The worked deployment of examples/deployment.cpp: one source fanning
// out to an audio chain (4 ms sink) and a half-rate control actuator
// (8 ms sink), on two 1 ms TDM wheels.
struct ForkDeployment {
  taskgraph::TaskGraph tasks;
  sched::Platform platform;
  std::vector<DeploymentConstraint> streams;
};

ForkDeployment make_fork_deployment() {
  ForkDeployment d;
  const Duration placeholder = milliseconds(Rational(1));
  const auto src = d.tasks.add_task("audio-src", placeholder);
  const auto dsp = d.tasks.add_task("audio-dsp", placeholder);
  const auto out = d.tasks.add_task("audio-out", placeholder);
  const auto act = d.tasks.add_task("ctl-act", placeholder);
  (void)d.tasks.add_buffer(src, dsp, RateSet::singleton(4),
                           RateSet::singleton(4));
  (void)d.tasks.add_buffer(dsp, out, RateSet::singleton(1),
                           RateSet::singleton(1));
  (void)d.tasks.add_buffer(src, act, RateSet::singleton(1),
                           RateSet::singleton(2));

  const Duration wheel = milliseconds(Rational(1));
  const auto cpu0 = d.platform.add_processor("cpu0", wheel);
  const auto cpu1 = d.platform.add_processor("cpu1", wheel);
  d.platform.bind_task("audio-src", cpu0, us(250), us(120));
  d.platform.bind_task("audio-dsp", cpu1, us(500), us(400));
  d.platform.bind_task("audio-out", cpu0, us(250), us(100));
  d.platform.bind_task("ctl-act", cpu1, us(250), us(80));

  d.streams = {{"audio-out", milliseconds(Rational(4))},
               {"ctl-act", milliseconds(Rational(8))}};
  return d;
}

void expect_identical(const GraphAnalysis& got, const GraphAnalysis& want) {
  EXPECT_EQ(got.admissible, want.admissible);
  EXPECT_EQ(got.diagnostics, want.diagnostics);
  EXPECT_EQ(got.actors_in_order, want.actors_in_order);
  EXPECT_EQ(got.pacing, want.pacing);
  EXPECT_EQ(got.leads, want.leads);
  EXPECT_EQ(got.total_capacity, want.total_capacity);
  ASSERT_EQ(got.pairs.size(), want.pairs.size());
  for (std::size_t i = 0; i < got.pairs.size(); ++i) {
    EXPECT_EQ(got.pairs[i].capacity, want.pairs[i].capacity) << "pair " << i;
    EXPECT_EQ(got.pairs[i].raw_tokens, want.pairs[i].raw_tokens)
        << "pair " << i;
    EXPECT_EQ(got.pairs[i].delta_total, want.pairs[i].delta_total)
        << "pair " << i;
    EXPECT_EQ(got.pairs[i].determined_by, want.pairs[i].determined_by)
        << "pair " << i;
  }
}

// ------------------------------------------------- hand-computed model

TEST(Deployment, HandComputedTdmForkModel) {
  const ForkDeployment d = make_fork_deployment();
  DeploymentOptions options;
  options.certify = true;
  const DeploymentResult result =
      analyze_deployment(d.tasks, d.platform, d.streams, options);
  ASSERT_TRUE(result.admissible);

  // Slot-granular κ = ceil(C/S)·(W−S) + C, all one-chunk WCETs here:
  //   audio-src: (1000−250) + 120 = 870 us, etc.
  ASSERT_EQ(result.kappas.size(), 4u);
  EXPECT_EQ(result.kappas[0].task_name, "audio-src");
  EXPECT_EQ(result.kappas[0].kappa, us(870));
  EXPECT_EQ(result.kappas[1].kappa, us(900));   // audio-dsp
  EXPECT_EQ(result.kappas[2].kappa, us(850));   // audio-out
  EXPECT_EQ(result.kappas[3].kappa, us(830));   // ctl-act

  // The constructed graph ran the analysis with ρ(v) = derived κ.
  for (const DerivedKappa& derived : result.kappas) {
    EXPECT_EQ(result.construction.graph
                  .actor(result.construction.actor_of_task[derived.task
                                                               .index()])
                  .response_time,
              derived.kappa);
  }

  // Locked capacities of the sized deployment.
  ASSERT_EQ(result.analysis.pairs.size(), 3u);
  EXPECT_EQ(result.analysis.pairs[0].capacity, 8);  // src -> dsp, {4}/{4}
  EXPECT_EQ(result.analysis.pairs[1].capacity, 3);  // src -> act, {1}/{2}
  EXPECT_EQ(result.analysis.pairs[2].capacity, 1);  // dsp -> out, {1}/{1}
  EXPECT_EQ(result.analysis.total_capacity, 12);

  // Certified, with one platform fact per task.
  ASSERT_TRUE(result.certificate.has_value());
  ASSERT_TRUE(result.certificate_check.has_value());
  EXPECT_TRUE(result.certificate_check->ok)
      << describe(result.certificate_check->violations.front());
  EXPECT_EQ(result.certificate->platform.size(), 4u);

  // The report renders the platform, κ and analysis sections.
  const std::string report =
      io::deployment_report(d.tasks, d.platform, result);
  EXPECT_NE(report.find("## Platform"), std::string::npos);
  EXPECT_NE(report.find("## Derived response times"), std::string::npos);
  EXPECT_NE(report.find("87/100000"), std::string::npos);  // κ(audio-src)
  EXPECT_NE(report.find("## Buffer capacities"), std::string::npos);
}

TEST(Deployment, RoundRobinPeerCouplingAndServiceModel) {
  // Round-robin ring: κ of every task is the ring's Σ WCET, so binding a
  // peer *after* a task retroactively grows its service model.
  sched::Platform platform;
  const auto ring =
      platform.add_processor("ring", milliseconds(Rational(1)),
                             sched::ArbiterPolicy::RoundRobin);
  platform.bind_task("a", ring, us(200));
  platform.bind_task("b", ring, us(300));
  EXPECT_EQ(platform.response_time("a"), us(500));
  platform.bind_task("c", ring, us(100));
  EXPECT_EQ(platform.response_time("a"), us(600));
  EXPECT_EQ(platform.response_time("c"), us(600));

  const sched::ServiceModel model = platform.service_model("a");
  EXPECT_EQ(model.policy, sched::ArbiterPolicy::RoundRobin);
  EXPECT_EQ(model.total_wcet, us(600));
  // Latency-rate abstraction: 2Σ − C = 1200 − 200 = 1000 us.
  EXPECT_EQ(model.as_latency_rate().response_time(model.wcet), us(1000));

  // The budget caps the ring's load.
  EXPECT_THROW(platform.bind_task("d", ring, us(500)), ContractError);
}

TEST(Deployment, LatencyRateDerivationIsConservativeEndToEnd) {
  const ForkDeployment d = make_fork_deployment();
  DeploymentOptions exact;
  DeploymentOptions lr;
  lr.derivation = KappaDerivation::LatencyRate;
  const DeploymentResult exact_result =
      analyze_deployment(d.tasks, d.platform, d.streams, exact);
  const DeploymentResult lr_result =
      analyze_deployment(d.tasks, d.platform, d.streams, lr);
  ASSERT_TRUE(exact_result.admissible);
  ASSERT_TRUE(lr_result.admissible);
  ASSERT_EQ(exact_result.kappas.size(), lr_result.kappas.size());
  for (std::size_t i = 0; i < exact_result.kappas.size(); ++i) {
    EXPECT_FALSE((lr_result.kappas[i].kappa - exact_result.kappas[i].kappa)
                     .is_negative())
        << exact_result.kappas[i].task_name;
  }
  // Conservative κ can only hold or grow the buffer bill.
  EXPECT_GE(lr_result.analysis.total_capacity,
            exact_result.analysis.total_capacity);
}

// --------------------------------------------- controller + rollback

TEST(Deployment, ControllerNamesTheBindingDimensionAndRollsBack) {
  const ForkDeployment d = make_fork_deployment();
  DeploymentController controller(d.tasks, d.platform, d.streams);
  controller.set_require_certificate(true);
  const GraphAnalysis before = controller.analysis();
  const Duration slot_before =
      controller.platform().service_model("audio-dsp").slot;

  // Throughput-bound: slot 80 us → κ = 5·920 + 400 = 5000 us > 4 ms.
  const DeploymentDecision analysis_bound =
      controller.set_slot("audio-dsp", us(80));
  EXPECT_FALSE(analysis_bound.accepted);
  EXPECT_FALSE(analysis_bound.wheel_binding);
  EXPECT_NE(analysis_bound.binding_constraint.find("audio-dsp"),
            std::string::npos);
  expect_identical(controller.analysis(), before);
  EXPECT_EQ(controller.platform().service_model("audio-dsp").slot,
            slot_before);
  EXPECT_EQ(controller.kappa("audio-dsp"), us(900));

  // Wheel-bound: cpu1 has 250 us slack; growing ctl-act to 600 us
  // rejects *before* the analysis, naming the wheel.
  const DeploymentDecision wheel_bound =
      controller.set_slot("ctl-act", us(600));
  EXPECT_FALSE(wheel_bound.accepted);
  EXPECT_TRUE(wheel_bound.wheel_binding);
  EXPECT_NE(wheel_bound.binding_constraint.find("cpu1"), std::string::npos);
  expect_identical(controller.analysis(), before);

  // An accepted retune moves κ and the serviced analysis together.
  const DeploymentDecision accepted =
      controller.set_slot("audio-dsp", us(450));
  EXPECT_TRUE(accepted.accepted);
  EXPECT_EQ(controller.kappa("audio-dsp"),
            us(550) + us(400));  // (1000−450) + 400
  expect_identical(controller.analysis(),
                   compute_buffer_capacities(
                       controller.engine().snapshot(),
                       controller.engine().constraints(),
                       controller.engine().options(),
                       controller.engine().overlay()));

  // Combined slot grant + admission: both roll back when the admission
  // is flow-inconsistent (audio-dsp is 1:1 with the 4 ms sink).
  const DeploymentDecision bad_admit = controller.admit(
      "audio-dsp", milliseconds(Rational(16)), us(500));
  EXPECT_FALSE(bad_admit.accepted);
  EXPECT_EQ(controller.platform().service_model("audio-dsp").slot, us(450));
  const DeploymentDecision good_admit =
      controller.admit("audio-dsp", milliseconds(Rational(4)), us(500));
  EXPECT_TRUE(good_admit.accepted);
  EXPECT_EQ(controller.platform().service_model("audio-dsp").slot, us(500));
  const DeploymentDecision removed = controller.remove("audio-dsp");
  EXPECT_TRUE(removed.accepted);
}

TEST(Deployment, RequiresBoundTasksAndKnownStreams) {
  ForkDeployment d = make_fork_deployment();
  (void)d.tasks.add_task("unbound", milliseconds(Rational(1)));
  EXPECT_THROW((void)analyze_deployment(d.tasks, d.platform, d.streams),
               ContractError);
  const ForkDeployment ok = make_fork_deployment();
  EXPECT_THROW((void)analyze_deployment(
                   ok.tasks, ok.platform,
                   {{"nonexistent", milliseconds(Rational(4))}}),
               ContractError);
  EXPECT_THROW(
      (void)analyze_deployment(ok.tasks, ok.platform, {}),
      ContractError);
}

// ------------------------------------- randomized differential sweep

// Random fork deployment in the frontier generator's shape: a root task
// fanning out to `streams` chains, bound round-robin across TDM wheels.
struct RandomDeployment {
  taskgraph::TaskGraph tasks;
  sched::Platform platform;
  std::vector<DeploymentConstraint> streams;
  std::vector<std::string> names;
};

RandomDeployment make_random_deployment(std::mt19937_64& rng,
                                        std::size_t processors,
                                        std::int64_t stream_count,
                                        std::int64_t tasks_per_stream) {
  RandomDeployment d;
  const Duration wheel = milliseconds(Rational(1));
  for (std::size_t p = 0; p < processors; ++p) {
    (void)d.platform.add_processor("cpu" + std::to_string(p), wheel);
  }
  std::uniform_int_distribution<std::int64_t> wcet_draw(2, 12);
  // Size the uniform slot to the densest processor so every binding
  // fits the wheel: the round-robin placement puts at most
  // ceil(total / processors) tasks on one wheel.
  const std::int64_t total =
      1 + stream_count * tasks_per_stream;
  const std::int64_t per_processor =
      (total + static_cast<std::int64_t>(processors) - 1) /
      static_cast<std::int64_t>(processors);
  const std::int64_t slot_sixteenths = std::min<std::int64_t>(
      4, std::max<std::int64_t>(1, 16 / per_processor));
  std::int64_t index = 0;
  const auto add = [&](const std::string& name) {
    const taskgraph::TaskId id = d.tasks.add_task(name, wheel);
    d.platform.bind_task(name,
                         static_cast<std::size_t>(index) % processors,
                         Duration(wheel.seconds() *
                                  Rational(slot_sixteenths, 16)),
                         Duration(wheel.seconds() *
                                  Rational(wcet_draw(rng), 64)));
    d.names.push_back(name);
    ++index;
    return id;
  };
  const taskgraph::TaskId root = add("root");
  for (std::int64_t s = 0; s < stream_count; ++s) {
    taskgraph::TaskId previous = root;
    for (std::int64_t t = 0; t < tasks_per_stream; ++t) {
      const taskgraph::TaskId id =
          add("s" + std::to_string(s) + "t" + std::to_string(t));
      (void)d.tasks.add_buffer(previous, id, RateSet::singleton(1),
                               RateSet::singleton(1));
      previous = id;
    }
    d.streams.push_back(DeploymentConstraint{
        "s" + std::to_string(s) + "t" + std::to_string(tasks_per_stream - 1),
        milliseconds(Rational(4))});
  }
  return d;
}

TEST(DeploymentDifferential, SlotRetuneSweepMatchesFullRecompute) {
  // ≥ 40 seeds: every slot-budget change routed through the controller
  // must leave analysis() field-for-field identical to a full recompute
  // over the engine's snapshot, constraints and overlay.
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    std::mt19937_64 rng(seed);
    const std::size_t processors = 1 + seed % 3;
    const RandomDeployment d = make_random_deployment(
        rng, processors, 1 + static_cast<std::int64_t>(seed % 2), 3);
    DeploymentController controller(d.tasks, d.platform, d.streams);
    const auto check = [&](const char* op) {
      SCOPED_TRACE(std::string("after ") + op + ", seed " +
                   std::to_string(seed));
      expect_identical(controller.analysis(),
                       compute_buffer_capacities(
                           controller.engine().snapshot(),
                           controller.engine().constraints(),
                           controller.engine().options(),
                           controller.engine().overlay()));
    };
    check("construction");
    std::uniform_int_distribution<std::size_t> task_draw(0,
                                                         d.names.size() - 1);
    std::uniform_int_distribution<std::int64_t> slot_draw(1, 8);
    for (int op = 0; op < 8; ++op) {
      const std::string& task = d.names[task_draw(rng)];
      const Duration slot = Duration(milliseconds(Rational(1)).seconds() *
                                     Rational(slot_draw(rng), 16));
      (void)controller.set_slot(task, slot);
      check("set_slot");  // identical whether accepted or rolled back
    }
  }
}

// ------------------------------------------- certificate tamper matrix

TEST(DeploymentCertificate, TamperedKappaTermsAreRejectedNamingTheClause) {
  const ForkDeployment d = make_fork_deployment();
  DeploymentOptions options;
  options.certify = true;
  const DeploymentResult result =
      analyze_deployment(d.tasks, d.platform, d.streams, options);
  ASSERT_TRUE(result.admissible);
  ASSERT_TRUE(result.certificate.has_value());
  const Certificate& good = *result.certificate;
  const dataflow::VrdfGraph& graph = result.construction.graph;
  ASSERT_TRUE(check_certificate(graph, good).ok);

  const auto expect_kappa_violation = [&](Certificate tampered,
                                          const char* what) {
    const CertificateCheck check = check_certificate(graph, tampered);
    SCOPED_TRACE(what);
    ASSERT_FALSE(check.ok);
    bool kappa_clause = false;
    for (const ClauseViolation& violation : check.violations) {
      if (violation.kind == ClauseKind::Kappa) {
        kappa_clause = true;
        // The violation names the actor whose fact was tampered.
        EXPECT_NE(violation.subject.find("audio-dsp"), std::string::npos)
            << describe(violation);
      }
    }
    EXPECT_TRUE(kappa_clause);
  };

  // audio-dsp is platform fact 1 (κ-vector order).
  ASSERT_EQ(good.platform[1].actor,
            result.construction.actor_of_task[1]);
  {
    Certificate tampered = good;
    tampered.platform[1].kappa = tampered.platform[1].kappa + us(1);
    expect_kappa_violation(std::move(tampered), "kappa off by 1 us");
  }
  {
    Certificate tampered = good;
    tampered.platform[1].ceil_term += 1;
    expect_kappa_violation(std::move(tampered), "inflated ceil witness");
  }
  {
    Certificate tampered = good;
    tampered.platform[1].wheel = tampered.platform[1].wheel + us(100);
    expect_kappa_violation(std::move(tampered), "stretched wheel");
  }
  {
    Certificate tampered = good;
    tampered.platform[1].slot = us(125);
    expect_kappa_violation(std::move(tampered), "shrunk slot");
  }
  {
    Certificate tampered = good;
    tampered.platform[1].wcet = tampered.platform[1].wcet - us(1);
    expect_kappa_violation(std::move(tampered), "trimmed wcet");
  }
  {
    // Swapping the policy breaks the κ re-derivation (the recorded κ is
    // the TDM bound, not 2Σ−C of a fabricated ring).
    Certificate tampered = good;
    tampered.platform[1].policy = ServicePolicy::RoundRobinLatencyRate;
    tampered.platform[1].total_wcet = tampered.platform[1].wcet * Rational(2);
    expect_kappa_violation(std::move(tampered), "swapped policy");
  }
  {
    Certificate tampered = good;
    tampered.platform.push_back(tampered.platform[1]);
    const CertificateCheck check = check_certificate(graph, tampered);
    EXPECT_FALSE(check.ok);  // duplicate platform fact
  }
  {
    Certificate tampered = good;
    tampered.platform[1].actor =
        dataflow::ActorId(static_cast<dataflow::ActorId::underlying_type>(
            graph.actor_count()));
    const CertificateCheck check = check_certificate(graph, tampered);
    EXPECT_FALSE(check.ok);  // out-of-range actor
  }
}

// ---------------------------------------- two-phase harness + frontier

TEST(DeploymentSweep, RandomDeploymentsVerifyAtDerivedKappas) {
  // processors × streams × seeds, each admissible deployment's derived
  // capacities verified end-to-end: zero starvations at ρ(v) = κ(w).
  int verified = 0;
  for (std::size_t processors = 1; processors <= 3; ++processors) {
    for (std::int64_t streams = 1; streams <= 2; ++streams) {
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        std::mt19937_64 rng(seed * 31 + processors * 7 +
                            static_cast<std::uint64_t>(streams));
        const RandomDeployment d =
            make_random_deployment(rng, processors, streams, 3);
        DeploymentResult result =
            analyze_deployment(d.tasks, d.platform, d.streams);
        if (!result.admissible) {
          continue;
        }
        apply_capacities(result.construction.graph, result.analysis);
        sim::VerifyOptions options;
        options.observe_firings = 150;
        options.default_seed = seed;
        const sim::VerifyResult verdict = sim::verify_throughput(
            result.construction.graph, result.constraints, {}, options);
        EXPECT_TRUE(verdict.ok)
            << "procs " << processors << " streams " << streams << " seed "
            << seed << ": " << verdict.detail;
        EXPECT_EQ(verdict.starvation_count, 0);
        ++verified;
      }
    }
  }
  // The sweep must actually exercise the harness, not vacuously skip.
  EXPECT_GE(verified, 20);
}

TEST(DeploymentFrontier, CanonicalReportIsThreadCountInvariant) {
  sim::FrontierSpec spec;
  spec.stream_counts = {1, 2};
  spec.slot_sixteenths = {1, 2, 4, 6};
  spec.seeds_per_cell = 2;
  spec.observe_firings = 60;
  const sim::FrontierSweep sweep(spec);
  const sim::FrontierReport serial = sweep.run(1);
  const sim::FrontierReport threaded = sweep.run(4);
  EXPECT_EQ(sim::canonical_text(serial), sim::canonical_text(threaded));

  // The default-shaped spec straddles the frontier: all three outcome
  // classes appear, every admitted item verifies starvation-free, and
  // every certificate checks out.
  EXPECT_GT(serial.admitted, 0);
  EXPECT_GT(serial.rejected_wheel, 0);
  EXPECT_GT(serial.rejected_analysis, 0);
  EXPECT_EQ(serial.verified, serial.admitted);
  EXPECT_EQ(serial.starvations, 0);
  EXPECT_EQ(serial.certified, serial.admitted);
  EXPECT_EQ(serial.certificate_failures, 0);
  EXPECT_EQ(serial.total_items,
            static_cast<std::int64_t>(sweep.items().size()));
}

}  // namespace
}  // namespace vrdf::analysis
