// Unit tests for pacing propagation and buffer sizing (Sections 4.2-4.4)
// beyond the MP3 case study: the Fig 1/2 example, the source-constrained
// mirror, rounding modes, admissibility diagnostics, and the
// sink/source symmetry property.
#include <gtest/gtest.h>

#include "analysis/buffer_sizing.hpp"
#include "analysis/pacing.hpp"
#include "models/fig1.hpp"
#include "util/error.hpp"

namespace vrdf::analysis {
namespace {

using dataflow::ActorId;
using dataflow::RateSet;
using dataflow::VrdfGraph;

const Duration kTau = milliseconds(Rational(3));

TEST(Pacing, Fig1PacingPropagatesUpstream) {
  // m = {3}, n = {2,3}: φ(va) = (τ/γ̂)·π̌ = (τ/3)·3 = τ.
  const models::Fig1Vrdf model = models::make_fig1_vrdf(kTau, kTau, kTau);
  const PacingResult pacing = compute_pacing(model.graph, model.constraint);
  ASSERT_TRUE(pacing.ok);
  EXPECT_EQ(pacing.side, ConstraintSide::Sink);
  ASSERT_EQ(pacing.pacing.size(), 2u);
  EXPECT_EQ(pacing.pacing[0], kTau);
  EXPECT_EQ(pacing.pacing[1], kTau);
}

TEST(Pacing, AcceptsInteriorConstraint) {
  // PR 5: an interior pin paces its upstream cone like a sink and its
  // downstream cone like a source (the old ends-only rejection is gone).
  VrdfGraph g;
  const ActorId a = g.add_actor("a", kTau);
  const ActorId b = g.add_actor("b", kTau);
  const ActorId c = g.add_actor("c", kTau);
  (void)g.add_buffer(a, b, RateSet::singleton(1), RateSet::singleton(1));
  (void)g.add_buffer(b, c, RateSet::singleton(1), RateSet::singleton(1));
  const PacingResult pacing =
      compute_pacing(g, ThroughputConstraint{b, kTau});
  ASSERT_TRUE(pacing.ok) << pacing.diagnostics[0];
  EXPECT_EQ(pacing.pacing_of(a), kTau);
  EXPECT_EQ(pacing.pacing_of(b), kTau);
  EXPECT_EQ(pacing.pacing_of(c), kTau);
  ASSERT_EQ(pacing.determined_by.size(), 2u);
  EXPECT_EQ(pacing.determined_by[0], ConstraintSide::Sink);    // a -> b
  EXPECT_EQ(pacing.determined_by[1], ConstraintSide::Source);  // b -> c
  ASSERT_EQ(pacing.constraint_is_sink_kind.size(), 1u);
  EXPECT_TRUE(pacing.constraint_is_sink_kind[0]);
  EXPECT_TRUE(pacing.constraint_is_source_kind[0]);
}

TEST(Pacing, RejectsNonPositivePeriod) {
  const models::Fig1Vrdf model = models::make_fig1_vrdf(kTau, kTau, kTau);
  const PacingResult pacing = compute_pacing(
      model.graph, ThroughputConstraint{model.vb, Duration()});
  EXPECT_FALSE(pacing.ok);
}

TEST(Pacing, RejectsZeroMinProductionInSinkMode) {
  VrdfGraph g;
  const ActorId a = g.add_actor("a", kTau);
  const ActorId b = g.add_actor("b", kTau);
  (void)g.add_buffer(a, b, RateSet::of({0, 3}), RateSet::singleton(2));
  const PacingResult pacing = compute_pacing(g, ThroughputConstraint{b, kTau});
  EXPECT_FALSE(pacing.ok);
  EXPECT_NE(pacing.diagnostics[0].find("minimum production quantum is zero"),
            std::string::npos);
}

TEST(Pacing, AllowsZeroMinConsumptionInSinkMode) {
  VrdfGraph g;
  const ActorId a = g.add_actor("a", kTau);
  const ActorId b = g.add_actor("b", kTau * Rational(2, 3));
  (void)g.add_buffer(a, b, RateSet::singleton(3), RateSet::of({0, 2, 3}));
  EXPECT_TRUE(compute_pacing(g, ThroughputConstraint{b, kTau}).ok);
}

TEST(Pacing, SourceModeMirrorsZeroRules) {
  VrdfGraph g;
  const ActorId a = g.add_actor("a", kTau);
  const ActorId b = g.add_actor("b", kTau);
  (void)g.add_buffer(a, b, RateSet::of({0, 3}), RateSet::singleton(2));
  // Zero *production* is tolerated under a source constraint...
  EXPECT_TRUE(compute_pacing(g, ThroughputConstraint{a, kTau}).ok);

  VrdfGraph h;
  const ActorId c = h.add_actor("c", kTau);
  const ActorId d = h.add_actor("d", kTau);
  (void)h.add_buffer(c, d, RateSet::singleton(2), RateSet::of({0, 3}));
  // ...but zero consumption is not.
  const PacingResult pacing = compute_pacing(h, ThroughputConstraint{c, kTau});
  EXPECT_FALSE(pacing.ok);
  EXPECT_NE(pacing.diagnostics[0].find("minimum consumption quantum is zero"),
            std::string::npos);
}

TEST(BufferSizing, Fig1CapacityAtMaxResponseTimes) {
  // s = τ/3, Δ = 2τ + 2s + 2s = 10τ/3, x = 10; variable pair ⇒ x+1 = 11.
  const models::Fig1Vrdf model = models::make_fig1_vrdf(kTau, kTau, kTau);
  const GraphAnalysis analysis =
      compute_buffer_capacities(model.graph, model.constraint);
  ASSERT_TRUE(analysis.admissible);
  ASSERT_EQ(analysis.pairs.size(), 1u);
  EXPECT_EQ(analysis.pairs[0].raw_tokens, Rational(10));
  EXPECT_EQ(analysis.pairs[0].capacity, 11);
  EXPECT_FALSE(analysis.pairs[0].is_static);
  EXPECT_EQ(analysis.total_capacity, 11);
}

TEST(BufferSizing, Fig1DeltaBreakdownMatchesEquations) {
  const models::Fig1Vrdf model = models::make_fig1_vrdf(kTau, kTau, kTau);
  const GraphAnalysis analysis =
      compute_buffer_capacities(model.graph, model.constraint);
  ASSERT_TRUE(analysis.admissible);
  const PairAnalysis& pair = analysis.pairs[0];
  const Duration s = kTau / Rational(3);
  // Eq (1): ρ(va) + s·(π̂−1) = τ + 2s.
  EXPECT_EQ(pair.delta_producer, kTau + s * Rational(2));
  // Eq (2): ρ(vb) + s·(γ̂−1) = τ + 2s.
  EXPECT_EQ(pair.delta_consumer, kTau + s * Rational(2));
  // Eq (3).
  EXPECT_EQ(pair.delta_total, pair.delta_producer + pair.delta_consumer);
  EXPECT_EQ(pair.bound_rate, s);
}

TEST(BufferSizing, SmallerResponseTimesShrinkCapacity) {
  const Duration half = kTau / Rational(2);
  const models::Fig1Vrdf model = models::make_fig1_vrdf(kTau, half, half);
  const GraphAnalysis analysis =
      compute_buffer_capacities(model.graph, model.constraint);
  ASSERT_TRUE(analysis.admissible);
  // Δ = τ + 4τ/3 = 7τ/3, x = 7 ⇒ 8.
  EXPECT_EQ(analysis.pairs[0].raw_tokens, Rational(7));
  EXPECT_EQ(analysis.pairs[0].capacity, 8);
}

TEST(BufferSizing, RoundingModesDiffer) {
  const models::Fig1Vrdf model = models::make_fig1_vrdf(kTau, kTau, kTau);
  AnalysisOptions options;
  options.rounding = RoundingMode::Ceil;
  EXPECT_EQ(compute_buffer_capacities(model.graph, model.constraint, options)
                .pairs[0]
                .capacity,
            10);
  options.rounding = RoundingMode::PaperLiteral;
  EXPECT_EQ(compute_buffer_capacities(model.graph, model.constraint, options)
                .pairs[0]
                .capacity,
            11);
}

TEST(BufferSizing, InadmissibleWhenResponseExceedsPacing) {
  // ρ(va) = 2τ > φ(va) = τ.
  const models::Fig1Vrdf model =
      models::make_fig1_vrdf(kTau, kTau * Rational(2), kTau);
  const GraphAnalysis analysis =
      compute_buffer_capacities(model.graph, model.constraint);
  EXPECT_FALSE(analysis.admissible);
  ASSERT_FALSE(analysis.diagnostics.empty());
  EXPECT_NE(analysis.diagnostics[0].find("exceeds pacing"), std::string::npos);
  EXPECT_TRUE(analysis.pairs.empty());
}

TEST(BufferSizing, SourceConstrainedStaticPair) {
  // Source mode, static 2/4 pair: s = τ/2, φ(vb) = 2τ,
  // Δ = ρa + ρb + s·1 + s·3 = τ + 2τ + 2τ = 5τ, x = 10; tight pair ⇒ 10.
  VrdfGraph g;
  const ActorId a = g.add_actor("a", kTau);
  const ActorId b = g.add_actor("b", kTau * Rational(2));
  (void)g.add_buffer(a, b, RateSet::singleton(2), RateSet::singleton(4));
  const GraphAnalysis analysis =
      compute_buffer_capacities(g, ThroughputConstraint{a, kTau});
  ASSERT_TRUE(analysis.admissible);
  EXPECT_EQ(analysis.side, ConstraintSide::Source);
  EXPECT_EQ(analysis.pacing[1], kTau * Rational(2));
  EXPECT_EQ(analysis.pairs[0].raw_tokens, Rational(10));
  EXPECT_EQ(analysis.pairs[0].capacity, 10);
}

TEST(BufferSizing, SourceAndSinkModesAreMirrorImages) {
  // Reversing the chain and swapping π/γ must give identical capacities.
  const RateSet pi = RateSet::of({2, 5});
  const RateSet gamma = RateSet::of({3, 4});
  const Duration rho_a = kTau;
  const Duration rho_b = kTau * Rational(3, 5);

  VrdfGraph source_graph;
  const ActorId sa = source_graph.add_actor("sa", rho_a);
  const ActorId sb = source_graph.add_actor("sb", rho_b);
  (void)source_graph.add_buffer(sa, sb, pi, gamma);
  const GraphAnalysis source_analysis = compute_buffer_capacities(
      source_graph, ThroughputConstraint{sa, kTau});

  VrdfGraph sink_graph;
  const ActorId kb = sink_graph.add_actor("kb", rho_b);
  const ActorId ka = sink_graph.add_actor("ka", rho_a);
  (void)sink_graph.add_buffer(kb, ka, gamma, pi);
  const GraphAnalysis sink_analysis =
      compute_buffer_capacities(sink_graph, ThroughputConstraint{ka, kTau});

  ASSERT_TRUE(source_analysis.admissible);
  ASSERT_TRUE(sink_analysis.admissible);
  EXPECT_EQ(source_analysis.pairs[0].raw_tokens,
            sink_analysis.pairs[0].raw_tokens);
  EXPECT_EQ(source_analysis.pairs[0].capacity, sink_analysis.pairs[0].capacity);
  EXPECT_EQ(source_analysis.pacing[1], sink_analysis.pacing[0]);
}

TEST(BufferSizing, SingleActorChainIsTriviallyAdmissible) {
  VrdfGraph g;
  const ActorId a = g.add_actor("only", kTau);
  const GraphAnalysis analysis =
      compute_buffer_capacities(g, ThroughputConstraint{a, kTau});
  ASSERT_TRUE(analysis.admissible);
  EXPECT_TRUE(analysis.pairs.empty());
  EXPECT_EQ(analysis.total_capacity, 0);
}

TEST(BufferSizing, SingleActorSlowerThanPeriodIsInadmissible) {
  VrdfGraph g;
  const ActorId a = g.add_actor("only", kTau * Rational(2));
  EXPECT_FALSE(
      compute_buffer_capacities(g, ThroughputConstraint{a, kTau}).admissible);
}

TEST(BufferSizing, ApplyCapacitiesWritesSpaceEdges) {
  models::Fig1Vrdf model = models::make_fig1_vrdf(kTau, kTau, kTau);
  const GraphAnalysis analysis =
      compute_buffer_capacities(model.graph, model.constraint);
  ASSERT_TRUE(analysis.admissible);
  apply_capacities(model.graph, analysis);
  EXPECT_EQ(model.graph.edge(model.buffer.space).initial_tokens, 11);
  EXPECT_EQ(model.graph.edge(model.buffer.data).initial_tokens, 0);
}

TEST(BufferSizing, ApplyCapacitiesRejectsInadmissibleAnalysis) {
  models::Fig1Vrdf model =
      models::make_fig1_vrdf(kTau, kTau * Rational(2), kTau);
  const GraphAnalysis analysis =
      compute_buffer_capacities(model.graph, model.constraint);
  ASSERT_FALSE(analysis.admissible);
  EXPECT_THROW(apply_capacities(model.graph, analysis), ContractError);
}

TEST(BufferSizing, WiderConsumptionSetNeverShrinksCapacity) {
  // Monotonicity of the formula in the variability: enlarging γ's range
  // cannot reduce the computed capacity.
  std::int64_t previous = 0;
  for (std::int64_t gamma_min : {3LL, 2LL, 1LL, 0LL}) {
    VrdfGraph g;
    const ActorId a = g.add_actor("a", kTau);
    const ActorId b = g.add_actor("b", kTau);
    (void)g.add_buffer(a, b, RateSet::singleton(3),
                       RateSet::interval(gamma_min, 3));
    const GraphAnalysis analysis =
        compute_buffer_capacities(g, ThroughputConstraint{b, kTau});
    ASSERT_TRUE(analysis.admissible);
    EXPECT_GE(analysis.pairs[0].capacity, previous);
    previous = analysis.pairs[0].capacity;
  }
}

TEST(ResponseTimeBudget, MatchesPacing) {
  const models::Fig1Vrdf model = models::make_fig1_vrdf(kTau, kTau, kTau);
  const ResponseTimeBudget budget =
      max_admissible_response_times(model.graph, model.constraint);
  ASSERT_TRUE(budget.ok);
  ASSERT_EQ(budget.max_response_times.size(), 2u);
  EXPECT_EQ(budget.max_response_times[0], kTau);
  EXPECT_EQ(budget.max_response_times[1], kTau);
}

TEST(ResponseTimeBudget, FailsOnNonChain) {
  VrdfGraph g;
  const ActorId a = g.add_actor("a", kTau);
  const ResponseTimeBudget budget = max_admissible_response_times(
      g, ThroughputConstraint{a, Duration()});
  EXPECT_FALSE(budget.ok);
}

}  // namespace
}  // namespace vrdf::analysis
