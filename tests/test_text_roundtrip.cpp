// Text-format round-trip identity: write → parse → write must reproduce
// the document byte for byte across every random generator — constraints,
// capacity= (installed via apply_capacities) and delta= (cyclic
// back-edge tokens) included — plus the write-time rejection of actor
// names the whitespace-tokenized format cannot represent.
#include <gtest/gtest.h>

#include "analysis/buffer_sizing.hpp"
#include "io/text_format.hpp"
#include "models/synthetic.hpp"
#include "util/error.hpp"

namespace vrdf::io {
namespace {

using dataflow::ActorId;
using dataflow::RateSet;
using dataflow::VrdfGraph;

/// Sizes the graph (when admissible), serializes, reparses, reserializes
/// and checks byte identity plus graph-level equality of the reparse.
void expect_round_trip_identity(VrdfGraph graph,
                                const analysis::ConstraintSet& constraints,
                                const std::string& label) {
  const analysis::GraphAnalysis sized =
      analysis::compute_buffer_capacities(graph, constraints);
  ASSERT_TRUE(sized.admissible)
      << label << ": " << (sized.diagnostics.empty() ? "" : sized.diagnostics[0]);
  analysis::apply_capacities(graph, sized);

  const std::string text = write_chain(graph, constraints);
  const ChainDocument parsed = read_chain(text);
  EXPECT_EQ(write_chain(parsed.graph, parsed.constraints), text) << label;

  // The reparse is the same model, not just the same bytes.
  ASSERT_EQ(parsed.graph.actor_count(), graph.actor_count()) << label;
  ASSERT_EQ(parsed.constraints.size(), constraints.size()) << label;
  const analysis::GraphAnalysis reparsed =
      analysis::compute_buffer_capacities(parsed.graph, parsed.constraints);
  ASSERT_TRUE(reparsed.admissible) << label;
  EXPECT_EQ(reparsed.total_capacity, sized.total_capacity) << label;
}

TEST(TextRoundTrip, RandomChains) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    models::RandomChainSpec spec;
    spec.seed = seed;
    spec.length = 3 + seed % 4;
    spec.source_constrained = seed % 2 == 0;
    const models::SyntheticChain model = models::make_random_chain(spec);
    expect_round_trip_identity(model.graph, {model.constraint},
                               "chain seed " + std::to_string(seed));
  }
}

TEST(TextRoundTrip, RandomForkJoins) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    models::RandomForkJoinSpec spec;
    spec.seed = seed;
    spec.stages = 1 + seed % 2;
    spec.source_constrained = seed % 2 == 0;
    const models::SyntheticChain model = models::make_random_fork_join(spec);
    expect_round_trip_identity(model.graph, {model.constraint},
                               "fork-join seed " + std::to_string(seed));
  }
}

TEST(TextRoundTrip, RandomCyclics) {
  // delta= lines carry the back-edge tokens through the round trip.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    models::RandomCyclicSpec spec;
    spec.base.seed = seed;
    const models::SyntheticChain model = models::make_random_cyclic(spec);
    expect_round_trip_identity(model.graph, {model.constraint},
                               "cyclic seed " + std::to_string(seed));
  }
}

TEST(TextRoundTrip, RandomMultiSinks) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    models::RandomMultiSinkSpec spec;
    spec.seed = seed;
    spec.sinks = 2 + seed % 3;
    const models::SyntheticMultiConstraint model =
        models::make_random_multi_sink(spec);
    expect_round_trip_identity(model.graph, model.constraints,
                               "multi-sink seed " + std::to_string(seed));
  }
}

TEST(TextRoundTrip, RandomInteriorPins) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    models::RandomInteriorPinSpec spec;
    spec.seed = seed;
    spec.upstream_length = 1 + seed % 3;
    spec.downstream_length = 1 + (seed / 2) % 3;
    const models::SyntheticChain model =
        models::make_random_interior_pinned(spec);
    expect_round_trip_identity(model.graph, {model.constraint},
                               "interior seed " + std::to_string(seed));
  }
}

TEST(TextRoundTrip, UnserializableActorNamesRejectedAtWriteTime) {
  // A name with whitespace / '=' / '#' / "->" would tokenize wrong on
  // reparse (or truncate as a comment); write_chain must throw, not emit
  // a document that silently means something else.
  const auto graph_with_name = [](const std::string& name) {
    VrdfGraph g;
    const ActorId a = g.add_actor(name, milliseconds(Rational(1)));
    const ActorId b = g.add_actor("ok", milliseconds(Rational(1)));
    (void)g.add_buffer(a, b, RateSet::singleton(1), RateSet::singleton(1));
    return g;
  };
  for (const std::string bad :
       {"two words", "tab\tname", "a=b", "->", "a#b", ""}) {
    EXPECT_THROW(
        (void)write_chain(graph_with_name(bad), analysis::ConstraintSet{}),
        ContractError)
        << "name: '" << bad << "'";
  }
  // Benign punctuation still serializes.
  const std::string ok =
      write_chain(graph_with_name("dsp.core-1"), analysis::ConstraintSet{});
  EXPECT_NE(ok.find("dsp.core-1"), std::string::npos);
  const ChainDocument parsed = read_chain(ok);
  EXPECT_TRUE(parsed.graph.find_actor("dsp.core-1").has_value());
}

}  // namespace
}  // namespace vrdf::io
