// Property sweep over randomly generated chains: for every admissible
// random instance, the computed capacities must pass the two-phase
// simulation check under several quantum streams, and the structural
// invariants of the generators must hold.  This is the library's broad
// "theorem holds in practice" test.
#include <gtest/gtest.h>

#include "analysis/buffer_sizing.hpp"
#include "dataflow/validation.hpp"
#include "models/synthetic.hpp"
#include "sim/fleet.hpp"
#include "sim/verify.hpp"

namespace vrdf {
namespace {

using analysis::GraphAnalysis;
using models::RandomChainSpec;
using models::SyntheticChain;

class RandomChainSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, bool>> {};

TEST_P(RandomChainSweep, GeneratedChainsAreValidAndAdmissible) {
  RandomChainSpec spec;
  spec.seed = std::get<0>(GetParam());
  spec.source_constrained = std::get<1>(GetParam());
  spec.length = 3 + spec.seed % 4;
  SyntheticChain chain = models::make_random_chain(spec);
  EXPECT_TRUE(dataflow::validate_chain_model(chain.graph).ok());
  const GraphAnalysis analysis =
      analysis::compute_buffer_capacities(chain.graph, chain.constraint);
  ASSERT_TRUE(analysis.admissible);
  EXPECT_EQ(analysis.pairs.size(), spec.length - 1);
  for (const auto& pair : analysis.pairs) {
    EXPECT_GT(pair.capacity, 0);
    EXPECT_GE(Rational(pair.capacity) + Rational(1), pair.raw_tokens);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SinkAndSource, RandomChainSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u),
                       ::testing::Bool()));

TEST(RandomChainSweep, FleetVerifiesComputedCapacitiesAtScale) {
  // The simulation half of the sweep, through the sharded fleet harness
  // (PR 8): 64 chains per constraint placement — an 8x raise over the
  // 8-seed parameterized loop this replaces — each running the full
  // generate -> analyze -> two-phase-verify pipeline on pool workers.
  sim::SweepSpec spec;
  spec.classes = {models::ModelClass::Chain};
  spec.seeds_per_class = 64;
  spec.modes = {sim::ConstraintMode::Sink, sim::ConstraintMode::Source};
  // Leave some slack so simulations converge quickly, like real systems do.
  spec.response_fraction = Rational(3, 4);
  spec.observe_firings = 800;
  const sim::FleetReport report = sim::FleetSweep(spec).run(4);
  EXPECT_EQ(report.total_items, 128);
  EXPECT_EQ(report.passed, report.total_items)
      << sim::canonical_text(report);
  EXPECT_EQ(report.failed + report.rejected, 0);
  EXPECT_EQ(report.starvations, 0);
}

TEST(VideoPipeline, AdmissibleAndVerified) {
  SyntheticChain chain = models::make_video_pipeline();
  const GraphAnalysis analysis =
      analysis::compute_buffer_capacities(chain.graph, chain.constraint);
  ASSERT_TRUE(analysis.admissible);
  EXPECT_EQ(analysis.side, analysis::ConstraintSide::Sink);
  ASSERT_EQ(analysis.pairs.size(), 4u);
  analysis::apply_capacities(chain.graph, analysis);
  sim::VerifyOptions options;
  options.observe_firings = 500;
  const sim::VerifyResult result =
      sim::verify_throughput(chain.graph, chain.constraint, {}, options);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(SensorAcquisition, SourceConstrainedAdmissibleAndVerified) {
  SyntheticChain chain = models::make_sensor_acquisition();
  const GraphAnalysis analysis =
      analysis::compute_buffer_capacities(chain.graph, chain.constraint);
  ASSERT_TRUE(analysis.admissible);
  EXPECT_EQ(analysis.side, analysis::ConstraintSide::Source);
  analysis::apply_capacities(chain.graph, analysis);
  sim::VerifyOptions options;
  options.observe_firings = 20000;  // source fires per sample, needs depth
  const sim::VerifyResult result =
      sim::verify_throughput(chain.graph, chain.constraint, {}, options);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(ScaledResponseTimes, FractionOneIsTight) {
  SyntheticChain chain = models::make_video_pipeline();
  const auto budget = analysis::max_admissible_response_times(
      chain.graph, chain.constraint);
  ASSERT_TRUE(budget.ok);
  for (std::size_t i = 0; i < budget.actors_in_order.size(); ++i) {
    EXPECT_EQ(chain.graph.actor(budget.actors_in_order[i]).response_time,
              budget.max_response_times[i]);
  }
}

TEST(ScaledResponseTimes, RejectsNonChain) {
  dataflow::VrdfGraph g;
  const auto a = g.add_actor("a", milliseconds(Rational(1)));
  const auto b = g.add_actor("b", milliseconds(Rational(1)));
  (void)g.add_edge(a, b, dataflow::RateSet::singleton(1),
                   dataflow::RateSet::singleton(1));
  EXPECT_FALSE(models::with_scaled_response_times(
                   g, analysis::ThroughputConstraint{b, milliseconds(Rational(1))},
                   Rational(1))
                   .has_value());
}

}  // namespace
}  // namespace vrdf
