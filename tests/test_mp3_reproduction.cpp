// Integration test: full reproduction of the paper's Sec 5 case study.
//
// The MP3 playback chain must yield
//  * maximal admissible response times 51.2 ms / 24 ms / 10 ms / (1/44100) s,
//  * VRDF capacities d1 = 6015, d2 = 3263, d3 = 882,
//  * traditional [10] capacities 5888 / 3072 / 882 (n fixed to 960),
// and the computed capacities must sustain strictly periodic 44.1 kHz DAC
// execution in simulation for representative and adversarial bit-rate
// sequences.
#include <gtest/gtest.h>

#include "analysis/buffer_sizing.hpp"
#include "baseline/traditional.hpp"
#include "models/mp3.hpp"
#include "sim/verify.hpp"

namespace vrdf {
namespace {

using analysis::AnalysisOptions;
using analysis::GraphAnalysis;
using analysis::RoundingMode;
using models::make_mp3_playback;
using models::Mp3PaperNumbers;
using models::Mp3Playback;

TEST(Mp3Reproduction, MaxAdmissibleResponseTimesMatchPaper) {
  const Mp3Playback app = make_mp3_playback();
  const auto budget =
      analysis::max_admissible_response_times(app.graph, app.constraint);
  ASSERT_TRUE(budget.ok);
  ASSERT_EQ(budget.actors_in_order.size(), 4u);
  // Chain order is vBR, vMP3, vSRC, vDAC.
  EXPECT_EQ(budget.actors_in_order[0], app.br);
  EXPECT_EQ(budget.actors_in_order[3], app.dac);
  EXPECT_EQ(budget.max_response_times[0], milliseconds(Rational(512, 10)));
  EXPECT_EQ(budget.max_response_times[1], milliseconds(Rational(24)));
  EXPECT_EQ(budget.max_response_times[2], milliseconds(Rational(10)));
  EXPECT_EQ(budget.max_response_times[3], period_of_hz(Rational(44100)));
}

TEST(Mp3Reproduction, VrdfCapacitiesMatchPaper) {
  const Mp3Playback app = make_mp3_playback();
  const GraphAnalysis analysis =
      analysis::compute_buffer_capacities(app.graph, app.constraint);
  ASSERT_TRUE(analysis.admissible) << analysis.diagnostics.size();
  ASSERT_EQ(analysis.pairs.size(), 3u);
  EXPECT_EQ(analysis.pairs[0].capacity, Mp3PaperNumbers::kVrdfCapacities[0]);
  EXPECT_EQ(analysis.pairs[1].capacity, Mp3PaperNumbers::kVrdfCapacities[1]);
  EXPECT_EQ(analysis.pairs[2].capacity, Mp3PaperNumbers::kVrdfCapacities[2]);
}

TEST(Mp3Reproduction, RawTokenCountsAreIntegral) {
  // The paper's arithmetic works out to exactly integral raw counts
  // x = {6014, 3262, 882}; any floating-point drift would break this.
  const Mp3Playback app = make_mp3_playback();
  const GraphAnalysis analysis =
      analysis::compute_buffer_capacities(app.graph, app.constraint);
  ASSERT_TRUE(analysis.admissible);
  EXPECT_EQ(analysis.pairs[0].raw_tokens, Rational(6014));
  EXPECT_EQ(analysis.pairs[1].raw_tokens, Rational(3262));
  EXPECT_EQ(analysis.pairs[2].raw_tokens, Rational(882));
}

TEST(Mp3Reproduction, PaperLiteralRoundingOverprovisionsStaticPairByOne) {
  const Mp3Playback app = make_mp3_playback();
  AnalysisOptions options;
  options.rounding = RoundingMode::PaperLiteral;
  const GraphAnalysis analysis =
      analysis::compute_buffer_capacities(app.graph, app.constraint, options);
  ASSERT_TRUE(analysis.admissible);
  EXPECT_EQ(analysis.pairs[0].capacity, 6015);
  EXPECT_EQ(analysis.pairs[1].capacity, 3263);
  EXPECT_EQ(analysis.pairs[2].capacity, 883);  // ⌊882⌋+1 on the static pair
}

TEST(Mp3Reproduction, TraditionalBaselineMatchesPaper) {
  const Mp3Playback app = make_mp3_playback();
  const auto traditional = baseline::traditional_chain_capacities(app.graph);
  ASSERT_TRUE(traditional.ok);
  ASSERT_EQ(traditional.pairs.size(), 3u);
  EXPECT_EQ(traditional.pairs[0].capacity,
            Mp3PaperNumbers::kTraditionalCapacities[0]);
  EXPECT_EQ(traditional.pairs[1].capacity,
            Mp3PaperNumbers::kTraditionalCapacities[1]);
  EXPECT_EQ(traditional.pairs[2].capacity,
            Mp3PaperNumbers::kTraditionalCapacities[2]);
}

TEST(Mp3Reproduction, PacingIsTightOnEveryActor) {
  // The paper's response times are exactly the pacing; the admissibility
  // check must accept equality.
  const Mp3Playback app = make_mp3_playback();
  const GraphAnalysis analysis =
      analysis::compute_buffer_capacities(app.graph, app.constraint);
  ASSERT_TRUE(analysis.admissible);
  for (std::size_t i = 0; i < analysis.actors_in_order.size(); ++i) {
    EXPECT_EQ(analysis.pacing[i],
              app.graph.actor(analysis.actors_in_order[i]).response_time);
  }
}

class Mp3Verification : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Mp3Verification, ComputedCapacitiesSustainPeriodicDac) {
  Mp3Playback app = make_mp3_playback();
  const GraphAnalysis analysis =
      analysis::compute_buffer_capacities(app.graph, app.constraint);
  ASSERT_TRUE(analysis.admissible);
  analysis::apply_capacities(app.graph, analysis);

  sim::VerifyOptions options;
  options.observe_firings = 200000;  // ~4.5 s of audio
  options.default_seed = GetParam();
  const sim::VerifyResult result =
      sim::verify_throughput(app.graph, app.constraint, {}, options);
  EXPECT_TRUE(result.ok) << result.detail;
  EXPECT_EQ(result.starvation_count, 0);
}

INSTANTIATE_TEST_SUITE_P(RandomBitrates, Mp3Verification,
                         ::testing::Values(1u, 2u, 3u, 17u, 1234u));

TEST(Mp3Reproduction, AdversarialConstantLowBitrateSustainsPeriodicDac) {
  // n ≡ small constant forces the decoder to fire often and throttles vBR
  // via back-pressure — the situation Sec 2 describes.  Capacities must
  // still hold.
  Mp3Playback app = make_mp3_playback();
  const GraphAnalysis analysis =
      analysis::compute_buffer_capacities(app.graph, app.constraint);
  ASSERT_TRUE(analysis.admissible);
  analysis::apply_capacities(app.graph, analysis);

  sim::VerifyOptions options;
  options.observe_firings = 100000;
  for (const std::int64_t n : {96LL, 250LL, 960LL}) {
    const sim::VerifyResult result = sim::verify_throughput(
        app.graph, app.constraint,
        [&](sim::Simulator& s) {
          s.set_quantum_source(app.mp3, app.b1.data, sim::constant_source(n));
        },
        options);
    EXPECT_TRUE(result.ok) << "n=" << n << ": " << result.detail;
  }
}

TEST(Mp3Reproduction, MinMaxAlternationSustainsPeriodicDac) {
  Mp3Playback app = make_mp3_playback();
  const GraphAnalysis analysis =
      analysis::compute_buffer_capacities(app.graph, app.constraint);
  ASSERT_TRUE(analysis.admissible);
  analysis::apply_capacities(app.graph, analysis);

  sim::VerifyOptions options;
  options.observe_firings = 100000;
  const sim::VerifyResult result = sim::verify_throughput(
      app.graph, app.constraint,
      [&](sim::Simulator& s) {
        const auto& set = app.graph.edge(app.b1.data).consumption;
        s.set_quantum_source(app.mp3, app.b1.data,
                             sim::min_max_alternating_source(set));
      },
      options);
  EXPECT_TRUE(result.ok) << result.detail;
}

}  // namespace
}  // namespace vrdf
