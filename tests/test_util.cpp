// Unit tests for checked integers, time quantities and logging.
#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "util/checked_int.hpp"
#include "util/log.hpp"
#include "util/time.hpp"

namespace vrdf {
namespace {

constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();

TEST(CheckedInt, AddDetectsOverflowBothDirections) {
  EXPECT_EQ(checked_add(2, 3), 5);
  EXPECT_THROW((void)checked_add(kMax, 1), OverflowError);
  EXPECT_THROW((void)checked_add(kMin, -1), OverflowError);
}

TEST(CheckedInt, SubDetectsOverflow) {
  EXPECT_EQ(checked_sub(2, 5), -3);
  EXPECT_THROW((void)checked_sub(kMin, 1), OverflowError);
  EXPECT_THROW((void)checked_sub(kMax, -1), OverflowError);
}

TEST(CheckedInt, MulDetectsOverflow) {
  EXPECT_EQ(checked_mul(-4, 5), -20);
  EXPECT_THROW((void)checked_mul(kMax, 2), OverflowError);
  EXPECT_THROW((void)checked_mul(kMin, -1), OverflowError);
}

TEST(CheckedInt, NegRejectsInt64Min) {
  EXPECT_EQ(checked_neg(5), -5);
  EXPECT_THROW((void)checked_neg(kMin), OverflowError);
}

TEST(CheckedInt, Gcd) {
  EXPECT_EQ(gcd64(2048, 960), 64);
  EXPECT_EQ(gcd64(1152, 480), 96);
  EXPECT_EQ(gcd64(441, 1), 1);
  EXPECT_EQ(gcd64(0, 7), 7);
  EXPECT_EQ(gcd64(0, 0), 0);
  EXPECT_EQ(gcd64(-12, 18), 6);
}

TEST(CheckedInt, Lcm) {
  EXPECT_EQ(checked_lcm(4, 6), 12);
  EXPECT_EQ(checked_lcm(0, 6), 0);
  EXPECT_THROW((void)checked_lcm(kMax, kMax - 1), OverflowError);
}

TEST(CheckedInt, FloorAndCeilDiv) {
  EXPECT_EQ(floor_div(7, 2), 3);
  EXPECT_EQ(floor_div(-7, 2), -4);
  EXPECT_EQ(floor_div(8, 2), 4);
  EXPECT_EQ(ceil_div(7, 2), 4);
  EXPECT_EQ(ceil_div(-7, 2), -3);
  EXPECT_EQ(ceil_div(8, 2), 4);
  EXPECT_THROW((void)floor_div(1, 0), ContractError);
  EXPECT_THROW((void)ceil_div(1, -2), ContractError);
}

TEST(Time, DurationArithmetic) {
  const Duration a = milliseconds(Rational(10));
  const Duration b = milliseconds(Rational(5));
  EXPECT_EQ((a + b).seconds(), Rational(15, 1000));
  EXPECT_EQ((a - b).seconds(), Rational(5, 1000));
  EXPECT_EQ((a * Rational(3)).seconds(), Rational(30, 1000));
  EXPECT_EQ((a / Rational(4)).seconds(), Rational(10, 4000));
  EXPECT_EQ(a / b, Rational(2));
}

TEST(Time, TimePointAndDurationInterplay) {
  const TimePoint t0;
  const TimePoint t1 = t0 + milliseconds(Rational(3));
  EXPECT_EQ((t1 - t0).seconds(), Rational(3, 1000));
  EXPECT_LT(t0, t1);
  EXPECT_EQ(t1 - milliseconds(Rational(3)), t0);
}

TEST(Time, PeriodOfHz) {
  EXPECT_EQ(period_of_hz(Rational(44100)).seconds(), Rational(1, 44100));
  EXPECT_THROW((void)period_of_hz(Rational(0)), ContractError);
  EXPECT_THROW((void)period_of_hz(Rational(-5)), ContractError);
}

TEST(Time, UnitHelpersAgree) {
  EXPECT_EQ(seconds(Rational(1, 1000)), milliseconds(Rational(1)));
  EXPECT_EQ(milliseconds(Rational(1, 1000)), microseconds(Rational(1)));
}

TEST(Time, SignQueries) {
  EXPECT_TRUE(milliseconds(Rational(1)).is_positive());
  EXPECT_TRUE((milliseconds(Rational(1)) - milliseconds(Rational(2))).is_negative());
  EXPECT_TRUE(Duration().is_zero());
}

TEST(Time, Printing) {
  std::ostringstream os;
  os << milliseconds(Rational(10)) << " / " << TimePoint(Rational(2));
  EXPECT_EQ(os.str(), "1/100 s / 2 s");
}

TEST(Log, LevelFiltering) {
  const log::Level saved = log::level();
  log::set_level(log::Level::Error);
  EXPECT_EQ(log::level(), log::Level::Error);
  log::set_level(log::Level::Off);
  VRDF_LOG(Error) << "discarded at level Off";
  log::set_level(saved);
}

TEST(Log, LevelNames) {
  EXPECT_STREQ(log::level_name(log::Level::Info), "INFO");
  EXPECT_STREQ(log::level_name(log::Level::Warning), "WARN");
}

TEST(Error, RequireMacroCarriesContext) {
  try {
    VRDF_REQUIRE(1 == 2, "the message");
    FAIL() << "should have thrown";
  } catch (const ContractError& e) {
    EXPECT_NE(std::string(e.what()).find("the message"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace vrdf
