// Unit tests for the digraph container and topology algorithms.
#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/digraph.hpp"
#include "util/error.hpp"

namespace vrdf::graph {
namespace {

Digraph path_graph(std::size_t n) {
  Digraph g;
  std::vector<NodeId> nodes;
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back(g.add_node());
  }
  for (std::size_t i = 0; i + 1 < n; ++i) {
    (void)g.add_edge(nodes[i], nodes[i + 1]);
  }
  return g;
}

TEST(Digraph, AddAndQuery) {
  Digraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const EdgeId e = g.add_edge(a, b);
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.edge_source(e), a);
  EXPECT_EQ(g.edge_target(e), b);
  EXPECT_EQ(g.out_degree(a), 1u);
  EXPECT_EQ(g.in_degree(b), 1u);
  EXPECT_EQ(g.out_degree(b), 0u);
}

TEST(Digraph, RejectsDanglingEdges) {
  Digraph g;
  const NodeId a = g.add_node();
  EXPECT_THROW(g.add_edge(a, NodeId(7)), ContractError);
  EXPECT_THROW(g.add_edge(NodeId::invalid(), a), ContractError);
}

TEST(Digraph, ParallelEdgesAndSelfLoopsRepresentable) {
  Digraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  (void)g.add_edge(a, b);
  (void)g.add_edge(a, b);
  (void)g.add_edge(a, a);
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_EQ(g.out_degree(a), 3u);
}

TEST(WeakConnectivity, EmptyAndSingletonAreConnected) {
  Digraph g;
  EXPECT_TRUE(is_weakly_connected(g));
  (void)g.add_node();
  EXPECT_TRUE(is_weakly_connected(g));
}

TEST(WeakConnectivity, DirectionIsIgnored) {
  Digraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const NodeId c = g.add_node();
  (void)g.add_edge(b, a);
  (void)g.add_edge(b, c);
  EXPECT_TRUE(is_weakly_connected(g));
}

TEST(WeakConnectivity, DetectsDisconnection) {
  Digraph g;
  (void)g.add_node();
  (void)g.add_node();
  EXPECT_FALSE(is_weakly_connected(g));
}

TEST(ChainOrder, RecognizesForwardChain) {
  const Digraph g = path_graph(4);
  const auto order = chain_order(g);
  ASSERT_TRUE(order.has_value());
  ASSERT_EQ(order->nodes.size(), 4u);
  EXPECT_EQ(order->nodes.front(), NodeId(0));
  EXPECT_EQ(order->nodes.back(), NodeId(3));
  EXPECT_EQ(order->forward_edges.size(), 3u);
  for (const auto& back : order->back_edges) {
    EXPECT_TRUE(back.empty());
  }
}

TEST(ChainOrder, RecognizesChainBuiltBackwards) {
  Digraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const NodeId c = g.add_node();
  (void)g.add_edge(c, b);
  (void)g.add_edge(b, a);
  const auto order = chain_order(g);
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(order->nodes.front(), c);
  EXPECT_EQ(order->nodes.back(), a);
}

TEST(ChainOrder, AcceptsAntiParallelBackEdges) {
  Digraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const EdgeId fwd = g.add_edge(a, b);
  const EdgeId back = g.add_edge(b, a);
  const auto order = chain_order(g);
  ASSERT_TRUE(order.has_value());
  // Ambiguous orientation: both (a,b) and (b,a) admit exactly one forward
  // edge; the walk starts from the lower endpoint, so a comes first.
  EXPECT_EQ(order->nodes.front(), a);
  EXPECT_EQ(order->forward_edges[0], fwd);
  ASSERT_EQ(order->back_edges[0].size(), 1u);
  EXPECT_EQ(order->back_edges[0][0], back);
}

TEST(ChainOrder, SingleNodeIsAChain) {
  Digraph g;
  (void)g.add_node();
  const auto order = chain_order(g);
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(order->nodes.size(), 1u);
  EXPECT_TRUE(order->forward_edges.empty());
}

TEST(ChainOrder, RejectsBranching) {
  Digraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const NodeId c = g.add_node();
  (void)g.add_edge(a, b);
  (void)g.add_edge(a, c);
  EXPECT_FALSE(chain_order(g).has_value());
}

TEST(ChainOrder, RejectsCycle) {
  Digraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const NodeId c = g.add_node();
  (void)g.add_edge(a, b);
  (void)g.add_edge(b, c);
  (void)g.add_edge(c, a);
  EXPECT_FALSE(chain_order(g).has_value());
}

TEST(ChainOrder, RejectsSelfLoop) {
  Digraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  (void)g.add_edge(a, b);
  (void)g.add_edge(a, a);
  EXPECT_FALSE(chain_order(g).has_value());
}

TEST(ChainOrder, RejectsDisconnected) {
  Digraph g = path_graph(3);
  (void)g.add_node();
  EXPECT_FALSE(chain_order(g).has_value());
}

TEST(ChainOrder, RejectsMixedDirectionPath) {
  // a -> b <- c is an undirected path but has no consistent orientation.
  Digraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const NodeId c = g.add_node();
  (void)g.add_edge(a, b);
  (void)g.add_edge(c, b);
  EXPECT_FALSE(chain_order(g).has_value());
}

TEST(ChainOrder, RejectsParallelForwardEdges) {
  // Two a -> b edges leave the undirected shape a path, but the chain
  // orientation is ambiguous (two candidate forward edges).
  Digraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  (void)g.add_edge(a, b);
  (void)g.add_edge(a, b);
  EXPECT_FALSE(chain_order(g).has_value());
}

TEST(ChainOrder, RejectsParallelForwardEdgesInsideLongerChain) {
  Digraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const NodeId c = g.add_node();
  (void)g.add_edge(a, b);
  (void)g.add_edge(b, c);
  (void)g.add_edge(b, c);
  EXPECT_FALSE(chain_order(g).has_value());
}

TEST(ChainOrder, RejectsEmptyGraph) {
  EXPECT_FALSE(chain_order(Digraph{}).has_value());
}

TEST(ChainOrder, RejectsSingleNodeWithSelfLoop) {
  Digraph g;
  const NodeId a = g.add_node();
  (void)g.add_edge(a, a);
  EXPECT_FALSE(chain_order(g).has_value());
}

TEST(ChainOrder, RejectsTwoIsolatedNodes) {
  Digraph g;
  (void)g.add_node();
  (void)g.add_node();
  EXPECT_FALSE(chain_order(g).has_value());
}

TEST(ChainOrder, RejectsDisconnectedUnionOfTwoPaths) {
  // Degree profile looks chain-like (four endpoints fail fast), but also
  // check a disconnected 2+2 shape where the pair count gives it away.
  Digraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const NodeId c = g.add_node();
  const NodeId d = g.add_node();
  (void)g.add_edge(a, b);
  (void)g.add_edge(c, d);
  EXPECT_FALSE(chain_order(g).has_value());
}

TEST(TopologicalOrder, OrdersDag) {
  Digraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const NodeId c = g.add_node();
  (void)g.add_edge(a, b);
  (void)g.add_edge(a, c);
  (void)g.add_edge(b, c);
  const auto order = topological_order(g);
  ASSERT_TRUE(order.has_value());
  std::vector<std::size_t> position(3);
  for (std::size_t i = 0; i < order->size(); ++i) {
    position[(*order)[i].index()] = i;
  }
  EXPECT_LT(position[a.index()], position[b.index()]);
  EXPECT_LT(position[b.index()], position[c.index()]);
}

TEST(TopologicalOrder, ReverseOrderPutsSuccessorsFirst) {
  Digraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const NodeId c = g.add_node();
  (void)g.add_edge(a, b);
  (void)g.add_edge(a, c);
  (void)g.add_edge(b, c);
  const auto reversed = reverse_topological_order(g);
  ASSERT_TRUE(reversed.has_value());
  std::vector<std::size_t> position(3);
  for (std::size_t i = 0; i < reversed->size(); ++i) {
    position[(*reversed)[i].index()] = i;
  }
  EXPECT_LT(position[c.index()], position[b.index()]);
  EXPECT_LT(position[b.index()], position[a.index()]);
  Digraph cyclic;
  const NodeId x = cyclic.add_node();
  const NodeId y = cyclic.add_node();
  (void)cyclic.add_edge(x, y);
  (void)cyclic.add_edge(y, x);
  EXPECT_FALSE(reverse_topological_order(cyclic).has_value());
}

TEST(TopologicalOrder, DetectsCycle) {
  Digraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  (void)g.add_edge(a, b);
  (void)g.add_edge(b, a);
  EXPECT_FALSE(topological_order(g).has_value());
  EXPECT_TRUE(has_directed_cycle(g));
}

TEST(Bridges, PathEdgesAreAllBridges) {
  const Digraph g = path_graph(4);
  const auto bridge = undirected_bridges(g);
  ASSERT_EQ(bridge.size(), 3u);
  for (const bool b : bridge) {
    EXPECT_TRUE(b);
  }
}

TEST(Bridges, DiamondEdgesAreNotBridgesButTailIs) {
  //   a -> b -> d -> e
  //   a -> c -> d
  Digraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const NodeId c = g.add_node();
  const NodeId d = g.add_node();
  const NodeId e = g.add_node();
  (void)g.add_edge(a, b);
  (void)g.add_edge(a, c);
  (void)g.add_edge(b, d);
  (void)g.add_edge(c, d);
  const EdgeId tail = g.add_edge(d, e);
  const auto bridge = undirected_bridges(g);
  EXPECT_EQ(bridge, (std::vector<bool>{false, false, false, false, true}));
  EXPECT_TRUE(bridge[tail.index()]);
}

TEST(Bridges, ParallelEdgesAndSelfLoopsAreNotBridges) {
  Digraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const NodeId c = g.add_node();
  (void)g.add_edge(a, b);
  (void)g.add_edge(b, a);  // anti-parallel pair: undirected cycle
  (void)g.add_edge(b, b);  // self-loop
  (void)g.add_edge(b, c);  // bridge
  EXPECT_EQ(undirected_bridges(g),
            (std::vector<bool>{false, false, false, true}));
}

TEST(Bridges, DisconnectedComponentsHandled) {
  Digraph g = path_graph(2);
  const NodeId x = g.add_node();
  const NodeId y = g.add_node();
  (void)g.add_edge(x, y);
  (void)g.add_edge(y, x);
  EXPECT_EQ(undirected_bridges(g), (std::vector<bool>{true, false, false}));
}

TEST(Scc, FindsComponents) {
  Digraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const NodeId c = g.add_node();
  const NodeId d = g.add_node();
  (void)g.add_edge(a, b);
  (void)g.add_edge(b, a);
  (void)g.add_edge(b, c);
  (void)g.add_edge(c, d);
  (void)g.add_edge(d, c);
  const auto sccs = strongly_connected_components(g);
  ASSERT_EQ(sccs.size(), 2u);
  // Each component has two nodes.
  EXPECT_EQ(sccs[0].size(), 2u);
  EXPECT_EQ(sccs[1].size(), 2u);
}

TEST(Scc, SingletonComponents) {
  const Digraph g = path_graph(3);
  EXPECT_EQ(strongly_connected_components(g).size(), 3u);
}

TEST(Scc, BufferPairIsOneComponent) {
  Digraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  (void)g.add_edge(a, b);
  (void)g.add_edge(b, a);
  EXPECT_EQ(strongly_connected_components(g).size(), 1u);
}

TEST(Scc, SelfLoopStaysASingletonComponent) {
  // A self-loop does not merge its node with anything; the node is still
  // its own (cyclic) component.
  Digraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  (void)g.add_edge(a, a);
  (void)g.add_edge(a, b);
  const auto sccs = strongly_connected_components(g);
  ASSERT_EQ(sccs.size(), 2u);
  EXPECT_EQ(sccs[0].size(), 1u);
  EXPECT_EQ(sccs[1].size(), 1u);
}

TEST(Scc, ParallelAndAntiParallelEdgesDoNotOverMerge) {
  // Parallel edges a→b (twice) create no cycle; the anti-parallel pair
  // b⇄c does.  Components: {a}, {b, c}.
  Digraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const NodeId c = g.add_node();
  (void)g.add_edge(a, b);
  (void)g.add_edge(a, b);
  (void)g.add_edge(b, c);
  (void)g.add_edge(c, b);
  const auto sccs = strongly_connected_components(g);
  ASSERT_EQ(sccs.size(), 2u);
  std::size_t merged = 0;
  for (const auto& component : sccs) {
    merged = std::max(merged, component.size());
  }
  EXPECT_EQ(merged, 2u);
}

TEST(Scc, DisconnectedGraphCoversEveryNode) {
  // Two disjoint pieces: a 2-cycle and an isolated node; every node must
  // appear in exactly one component.
  Digraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  (void)g.add_node();  // isolated
  (void)g.add_edge(a, b);
  (void)g.add_edge(b, a);
  const auto sccs = strongly_connected_components(g);
  ASSERT_EQ(sccs.size(), 2u);
  std::size_t covered = 0;
  for (const auto& component : sccs) {
    covered += component.size();
  }
  EXPECT_EQ(covered, 3u);
}

TEST(Scc, SingleNodeGraph) {
  Digraph g;
  (void)g.add_node();
  const auto sccs = strongly_connected_components(g);
  ASSERT_EQ(sccs.size(), 1u);
  EXPECT_EQ(sccs[0], (std::vector<NodeId>{NodeId(0)}));
}

TEST(Scc, EmptyGraphHasNoComponents) {
  EXPECT_TRUE(strongly_connected_components(Digraph{}).empty());
}

TEST(FeedbackArcView, ClassifiesEdgesAgainstTheCondensation) {
  // a ⇄ b → c → d → c, plus self-loop on a: the a↔b and c↔d cycles are
  // components, the bridge b→c is the only acyclic edge.
  Digraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const NodeId c = g.add_node();
  const NodeId d = g.add_node();
  const EdgeId ab = g.add_edge(a, b);
  const EdgeId ba = g.add_edge(b, a);
  const EdgeId bc = g.add_edge(b, c);
  const EdgeId cd = g.add_edge(c, d);
  const EdgeId dc = g.add_edge(d, c);
  const EdgeId aa = g.add_edge(a, a);
  const FeedbackArcView view = feedback_arc_view(g);
  ASSERT_EQ(view.components.size(), 2u);
  // Components come in topological order: {a, b} feeds {c, d}.
  EXPECT_EQ(view.component_of[a.index()], view.component_of[b.index()]);
  EXPECT_EQ(view.component_of[c.index()], view.component_of[d.index()]);
  EXPECT_LT(view.component_of[a.index()], view.component_of[c.index()]);
  EXPECT_TRUE(view.edge_on_cycle[ab.index()]);
  EXPECT_TRUE(view.edge_on_cycle[ba.index()]);
  EXPECT_FALSE(view.edge_on_cycle[bc.index()]);
  EXPECT_TRUE(view.edge_on_cycle[cd.index()]);
  EXPECT_TRUE(view.edge_on_cycle[dc.index()]);
  EXPECT_TRUE(view.edge_on_cycle[aa.index()]);  // self-loop
}

TEST(FindDirectedCycle, ReportsACycleOrNothing) {
  EXPECT_FALSE(find_directed_cycle(path_graph(4)).has_value());

  Digraph g = path_graph(3);  // 0 → 1 → 2
  (void)g.add_edge(NodeId(2), NodeId(0));
  const auto cycle = find_directed_cycle(g);
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(*cycle, (std::vector<NodeId>{NodeId(0), NodeId(1), NodeId(2)}));

  Digraph h;
  const NodeId n = h.add_node();
  (void)h.add_edge(n, n);
  const auto loop = find_directed_cycle(h);
  ASSERT_TRUE(loop.has_value());
  EXPECT_EQ(*loop, (std::vector<NodeId>{n}));
}

TEST(HasPath, FindsAndRejectsPaths) {
  const Digraph g = path_graph(4);
  EXPECT_TRUE(has_path(g, NodeId(0), NodeId(3)));
  EXPECT_FALSE(has_path(g, NodeId(3), NodeId(0)));
  EXPECT_TRUE(has_path(g, NodeId(2), NodeId(2)));
}

TEST(Ids, InvalidAndValidBehaviour) {
  EXPECT_FALSE(NodeId::invalid().is_valid());
  EXPECT_TRUE(NodeId(0).is_valid());
  EXPECT_EQ(NodeId(3).index(), 3u);
  EXPECT_NE(std::hash<NodeId>{}(NodeId(1)), std::hash<NodeId>{}(NodeId(2)));
}

}  // namespace
}  // namespace vrdf::graph
