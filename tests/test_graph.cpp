// Unit tests for the digraph container and topology algorithms.
#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/digraph.hpp"
#include "util/error.hpp"

namespace vrdf::graph {
namespace {

Digraph path_graph(std::size_t n) {
  Digraph g;
  std::vector<NodeId> nodes;
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back(g.add_node());
  }
  for (std::size_t i = 0; i + 1 < n; ++i) {
    (void)g.add_edge(nodes[i], nodes[i + 1]);
  }
  return g;
}

TEST(Digraph, AddAndQuery) {
  Digraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const EdgeId e = g.add_edge(a, b);
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.edge_source(e), a);
  EXPECT_EQ(g.edge_target(e), b);
  EXPECT_EQ(g.out_degree(a), 1u);
  EXPECT_EQ(g.in_degree(b), 1u);
  EXPECT_EQ(g.out_degree(b), 0u);
}

TEST(Digraph, RejectsDanglingEdges) {
  Digraph g;
  const NodeId a = g.add_node();
  EXPECT_THROW(g.add_edge(a, NodeId(7)), ContractError);
  EXPECT_THROW(g.add_edge(NodeId::invalid(), a), ContractError);
}

TEST(Digraph, ParallelEdgesAndSelfLoopsRepresentable) {
  Digraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  (void)g.add_edge(a, b);
  (void)g.add_edge(a, b);
  (void)g.add_edge(a, a);
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_EQ(g.out_degree(a), 3u);
}

TEST(WeakConnectivity, EmptyAndSingletonAreConnected) {
  Digraph g;
  EXPECT_TRUE(is_weakly_connected(g));
  (void)g.add_node();
  EXPECT_TRUE(is_weakly_connected(g));
}

TEST(WeakConnectivity, DirectionIsIgnored) {
  Digraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const NodeId c = g.add_node();
  (void)g.add_edge(b, a);
  (void)g.add_edge(b, c);
  EXPECT_TRUE(is_weakly_connected(g));
}

TEST(WeakConnectivity, DetectsDisconnection) {
  Digraph g;
  (void)g.add_node();
  (void)g.add_node();
  EXPECT_FALSE(is_weakly_connected(g));
}

TEST(ChainOrder, RecognizesForwardChain) {
  const Digraph g = path_graph(4);
  const auto order = chain_order(g);
  ASSERT_TRUE(order.has_value());
  ASSERT_EQ(order->nodes.size(), 4u);
  EXPECT_EQ(order->nodes.front(), NodeId(0));
  EXPECT_EQ(order->nodes.back(), NodeId(3));
  EXPECT_EQ(order->forward_edges.size(), 3u);
  for (const auto& back : order->back_edges) {
    EXPECT_TRUE(back.empty());
  }
}

TEST(ChainOrder, RecognizesChainBuiltBackwards) {
  Digraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const NodeId c = g.add_node();
  (void)g.add_edge(c, b);
  (void)g.add_edge(b, a);
  const auto order = chain_order(g);
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(order->nodes.front(), c);
  EXPECT_EQ(order->nodes.back(), a);
}

TEST(ChainOrder, AcceptsAntiParallelBackEdges) {
  Digraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const EdgeId fwd = g.add_edge(a, b);
  const EdgeId back = g.add_edge(b, a);
  const auto order = chain_order(g);
  ASSERT_TRUE(order.has_value());
  // Ambiguous orientation: both (a,b) and (b,a) admit exactly one forward
  // edge; the walk starts from the lower endpoint, so a comes first.
  EXPECT_EQ(order->nodes.front(), a);
  EXPECT_EQ(order->forward_edges[0], fwd);
  ASSERT_EQ(order->back_edges[0].size(), 1u);
  EXPECT_EQ(order->back_edges[0][0], back);
}

TEST(ChainOrder, SingleNodeIsAChain) {
  Digraph g;
  (void)g.add_node();
  const auto order = chain_order(g);
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(order->nodes.size(), 1u);
  EXPECT_TRUE(order->forward_edges.empty());
}

TEST(ChainOrder, RejectsBranching) {
  Digraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const NodeId c = g.add_node();
  (void)g.add_edge(a, b);
  (void)g.add_edge(a, c);
  EXPECT_FALSE(chain_order(g).has_value());
}

TEST(ChainOrder, RejectsCycle) {
  Digraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const NodeId c = g.add_node();
  (void)g.add_edge(a, b);
  (void)g.add_edge(b, c);
  (void)g.add_edge(c, a);
  EXPECT_FALSE(chain_order(g).has_value());
}

TEST(ChainOrder, RejectsSelfLoop) {
  Digraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  (void)g.add_edge(a, b);
  (void)g.add_edge(a, a);
  EXPECT_FALSE(chain_order(g).has_value());
}

TEST(ChainOrder, RejectsDisconnected) {
  Digraph g = path_graph(3);
  (void)g.add_node();
  EXPECT_FALSE(chain_order(g).has_value());
}

TEST(ChainOrder, RejectsMixedDirectionPath) {
  // a -> b <- c is an undirected path but has no consistent orientation.
  Digraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const NodeId c = g.add_node();
  (void)g.add_edge(a, b);
  (void)g.add_edge(c, b);
  EXPECT_FALSE(chain_order(g).has_value());
}

TEST(TopologicalOrder, OrdersDag) {
  Digraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const NodeId c = g.add_node();
  (void)g.add_edge(a, b);
  (void)g.add_edge(a, c);
  (void)g.add_edge(b, c);
  const auto order = topological_order(g);
  ASSERT_TRUE(order.has_value());
  std::vector<std::size_t> position(3);
  for (std::size_t i = 0; i < order->size(); ++i) {
    position[(*order)[i].index()] = i;
  }
  EXPECT_LT(position[a.index()], position[b.index()]);
  EXPECT_LT(position[b.index()], position[c.index()]);
}

TEST(TopologicalOrder, DetectsCycle) {
  Digraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  (void)g.add_edge(a, b);
  (void)g.add_edge(b, a);
  EXPECT_FALSE(topological_order(g).has_value());
  EXPECT_TRUE(has_directed_cycle(g));
}

TEST(Scc, FindsComponents) {
  Digraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const NodeId c = g.add_node();
  const NodeId d = g.add_node();
  (void)g.add_edge(a, b);
  (void)g.add_edge(b, a);
  (void)g.add_edge(b, c);
  (void)g.add_edge(c, d);
  (void)g.add_edge(d, c);
  const auto sccs = strongly_connected_components(g);
  ASSERT_EQ(sccs.size(), 2u);
  // Each component has two nodes.
  EXPECT_EQ(sccs[0].size(), 2u);
  EXPECT_EQ(sccs[1].size(), 2u);
}

TEST(Scc, SingletonComponents) {
  const Digraph g = path_graph(3);
  EXPECT_EQ(strongly_connected_components(g).size(), 3u);
}

TEST(Scc, BufferPairIsOneComponent) {
  Digraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  (void)g.add_edge(a, b);
  (void)g.add_edge(b, a);
  EXPECT_EQ(strongly_connected_components(g).size(), 1u);
}

TEST(HasPath, FindsAndRejectsPaths) {
  const Digraph g = path_graph(4);
  EXPECT_TRUE(has_path(g, NodeId(0), NodeId(3)));
  EXPECT_FALSE(has_path(g, NodeId(3), NodeId(0)));
  EXPECT_TRUE(has_path(g, NodeId(2), NodeId(2)));
}

TEST(Ids, InvalidAndValidBehaviour) {
  EXPECT_FALSE(NodeId::invalid().is_valid());
  EXPECT_TRUE(NodeId(0).is_valid());
  EXPECT_EQ(NodeId(3).index(), 3u);
  EXPECT_NE(std::hash<NodeId>{}(NodeId(1)), std::hash<NodeId>{}(NodeId(2)));
}

}  // namespace
}  // namespace vrdf::graph
