// Tests for the arbiter response-time calculators and the io module
// (DOT export, text round-trip, table writer).
#include <gtest/gtest.h>

#include <random>

#include "analysis/buffer_sizing.hpp"
#include "io/dot.hpp"
#include "io/report.hpp"
#include "io/table.hpp"
#include "io/text_format.hpp"
#include "models/fig1.hpp"
#include "models/mp3.hpp"
#include "sched/arbiter.hpp"
#include "util/error.hpp"

namespace vrdf {
namespace {

using dataflow::RateSet;

TEST(Arbiter, TdmSlotGranularBound) {
  // C = 2 ms, slot 1 ms out of every 4 ms: ceil(2/1)·(4−1)+2 = 8 ms.
  const sched::TdmAllocation tdm{milliseconds(Rational(1)),
                                 milliseconds(Rational(4))};
  EXPECT_EQ(tdm.response_time(milliseconds(Rational(2))),
            milliseconds(Rational(8)));
  // C smaller than one slot: one gap + C.
  EXPECT_EQ(tdm.response_time(milliseconds(Rational(1, 2))),
            milliseconds(Rational(7, 2)));
}

TEST(Arbiter, TdmLatencyRateNeverTighter) {
  const sched::TdmAllocation tdm{milliseconds(Rational(1)),
                                 milliseconds(Rational(4))};
  const sched::LatencyRateServer lr = tdm.as_latency_rate();
  EXPECT_EQ(lr.latency, milliseconds(Rational(3)));
  EXPECT_EQ(lr.rate, Rational(1, 4));
  for (const auto& wcet :
       {milliseconds(Rational(1, 2)), milliseconds(Rational(2)),
        milliseconds(Rational(5))}) {
    EXPECT_GE(lr.response_time(wcet), tdm.response_time(wcet));
  }
}

TEST(Arbiter, LatencyRateFormula) {
  const sched::LatencyRateServer lr{milliseconds(Rational(2)), Rational(1, 3)};
  // κ = 2 ms + 3·C.
  EXPECT_EQ(lr.response_time(milliseconds(Rational(4))),
            milliseconds(Rational(14)));
}

TEST(Arbiter, RoundRobinSumsAllWcets) {
  const std::vector<Duration> wcets{milliseconds(Rational(1)),
                                    milliseconds(Rational(2)),
                                    milliseconds(Rational(3))};
  EXPECT_EQ(sched::round_robin_response_time(wcets, 0),
            milliseconds(Rational(6)));
  EXPECT_EQ(sched::round_robin_response_time(wcets, 2),
            milliseconds(Rational(6)));
  EXPECT_THROW((void)sched::round_robin_response_time(wcets, 3), ContractError);
}

TEST(Arbiter, InputValidation) {
  const sched::TdmAllocation bad{milliseconds(Rational(4)),
                                 milliseconds(Rational(1))};
  EXPECT_THROW((void)bad.response_time(milliseconds(Rational(1))),
               ContractError);
  const sched::LatencyRateServer lr{milliseconds(Rational(1)), Rational(2)};
  EXPECT_THROW((void)lr.response_time(milliseconds(Rational(1))),
               ContractError);
}

TEST(Arbiter, ResponseTimesFeedTheAnalysis) {
  // End-to-end: two tasks share a processor under TDM; their κ values make
  // an admissible chain iff the pacing allows them.
  const sched::TdmAllocation slot_a{milliseconds(Rational(1)),
                                    milliseconds(Rational(2))};
  const Duration kappa = slot_a.response_time(milliseconds(Rational(1)));
  // κ = 1·(2−1)+1 = 2 ms.
  models::Fig1Vrdf model =
      models::make_fig1_vrdf(milliseconds(Rational(2)), kappa, kappa);
  const analysis::GraphAnalysis analysis =
      analysis::compute_buffer_capacities(model.graph, model.constraint);
  EXPECT_TRUE(analysis.admissible);
}

TEST(Dot, VrdfGraphExportContainsActorsAndEdges) {
  const models::Mp3Playback app = models::make_mp3_playback();
  const std::string dot = io::to_dot(app.graph);
  EXPECT_NE(dot.find("digraph vrdf"), std::string::npos);
  EXPECT_NE(dot.find("vMP3"), std::string::npos);
  EXPECT_NE(dot.find("{2048} / [0,960]"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

TEST(Dot, TaskGraphExportContainsCapacities) {
  models::Mp3TaskGraph app = models::make_mp3_task_graph();
  app.graph.set_capacity(app.b3, 882);
  const std::string dot = io::to_dot(app.graph);
  EXPECT_NE(dot.find("digraph taskgraph"), std::string::npos);
  EXPECT_NE(dot.find("zeta=882"), std::string::npos);
}

TEST(TextFormat, RoundTripPreservesModel) {
  const models::Mp3Playback app = models::make_mp3_playback();
  const std::string text = io::write_chain(app.graph, app.constraint);
  const io::ChainDocument parsed = io::read_chain(text);
  ASSERT_EQ(parsed.graph.actor_count(), 4u);
  ASSERT_EQ(parsed.graph.edge_count(), 6u);
  ASSERT_TRUE(parsed.constraint.has_value());
  EXPECT_EQ(parsed.constraint->period, period_of_hz(Rational(44100)));
  // The parsed model must produce the same capacities.
  const analysis::GraphAnalysis analysis = analysis::compute_buffer_capacities(
      parsed.graph, *parsed.constraint);
  ASSERT_TRUE(analysis.admissible);
  EXPECT_EQ(analysis.pairs[0].capacity, 6015);
  EXPECT_EQ(analysis.pairs[1].capacity, 3263);
  EXPECT_EQ(analysis.pairs[2].capacity, 882);
}

TEST(TextFormat, RoundTripPreservesCapacities) {
  dataflow::VrdfGraph g;
  const auto a = g.add_actor("a", milliseconds(Rational(1)));
  const auto b = g.add_actor("b", milliseconds(Rational(512, 10)));
  (void)g.add_buffer(a, b, RateSet::of({2, 5}), RateSet::interval(0, 7), 13);
  const std::string text = io::write_chain(g, std::nullopt);
  const io::ChainDocument parsed = io::read_chain(text);
  const auto view = parsed.graph.chain_view();
  ASSERT_TRUE(view.has_value());
  const dataflow::Edge& data = parsed.graph.edge(view->buffers[0].data);
  const dataflow::Edge& space = parsed.graph.edge(view->buffers[0].space);
  EXPECT_EQ(data.production, RateSet::of({2, 5}));
  EXPECT_EQ(data.consumption, RateSet::interval(0, 7));
  EXPECT_EQ(space.initial_tokens, 13);
  EXPECT_EQ(parsed.graph.actor(view->actors[1]).response_time,
            milliseconds(Rational(512, 10)));
}

TEST(TextFormat, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "# a comment\n"
      "vrdf-chain v1\n"
      "\n"
      "actor a rho=0.001   # trailing comment\n"
      "actor b rho=1/1000\n"
      "buffer a -> b pi={3} gamma={2,3}\n";
  const io::ChainDocument parsed = io::read_chain(text);
  EXPECT_EQ(parsed.graph.actor_count(), 2u);
  EXPECT_FALSE(parsed.constraint.has_value());
}

TEST(TextFormat, MalformedInputsRejectedWithLineNumbers) {
  EXPECT_THROW((void)io::read_chain(""), ModelError);
  EXPECT_THROW((void)io::read_chain("bogus v1\n"), ModelError);
  try {
    (void)io::read_chain("vrdf-chain v1\nactor a rho=0.001\nbuffer a -> zz pi={1} gamma={1}\n");
    FAIL();
  } catch (const ModelError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("unknown actor"), std::string::npos);
  }
  EXPECT_THROW(
      (void)io::read_chain("vrdf-chain v1\nactor a rho=0.001\nactor b rho=1\n"
                           "buffer a -> b pi={1}\n"),
      ModelError);
  EXPECT_THROW(
      (void)io::read_chain("vrdf-chain v1\nwhatisthis\n"), ModelError);
}

TEST(Report, ContainsAllSections) {
  models::Mp3Playback app = models::make_mp3_playback();
  const analysis::GraphAnalysis sized =
      analysis::compute_buffer_capacities(app.graph, app.constraint);
  analysis::apply_capacities(app.graph, sized);
  const std::string report =
      io::analysis_report(app.graph, app.constraint, sized);
  EXPECT_NE(report.find("# Buffer-capacity analysis report"),
            std::string::npos);
  EXPECT_NE(report.find("## Pacing budget"), std::string::npos);
  EXPECT_NE(report.find("## Buffer capacities"), std::string::npos);
  EXPECT_NE(report.find("## Rate headroom"), std::string::npos);
  EXPECT_NE(report.find("6015"), std::string::npos);
  EXPECT_NE(report.find("tight"), std::string::npos);
  EXPECT_EQ(report.find("(!)"), std::string::npos);  // no mismatch
}

TEST(Report, FlagsInstalledCapacityMismatch) {
  models::Mp3Playback app = models::make_mp3_playback();
  const analysis::GraphAnalysis sized =
      analysis::compute_buffer_capacities(app.graph, app.constraint);
  analysis::apply_capacities(app.graph, sized);
  app.graph.set_initial_tokens(app.b2.space, 9999);
  const std::string report =
      io::analysis_report(app.graph, app.constraint, sized);
  EXPECT_NE(report.find("9999 (!)"), std::string::npos);
  EXPECT_NE(report.find("WARNING"), std::string::npos);
}

TEST(Report, RejectsInadmissibleAnalysis) {
  models::Mp3Playback app = models::make_mp3_playback();
  const analysis::GraphAnalysis bad = analysis::compute_buffer_capacities(
      app.graph,
      analysis::ThroughputConstraint{app.dac, period_of_hz(Rational(96000))});
  ASSERT_FALSE(bad.admissible);
  EXPECT_THROW(
      (void)io::analysis_report(
          app.graph,
          analysis::ThroughputConstraint{app.dac, period_of_hz(Rational(96000))},
          bad),
      ContractError);
}

TEST(Table, RendersAlignedColumns) {
  io::Table table({"buffer", "paper", "ours"});
  table.add_row({"d1", "6015", "6015"});
  table.add_row({"d2", "3263", "3263"});
  const std::string rendered = table.to_string();
  EXPECT_NE(rendered.find("| buffer | paper | ours |"), std::string::npos);
  EXPECT_NE(rendered.find("| d1     | 6015  | 6015 |"), std::string::npos);
  EXPECT_THROW(table.add_row({"too", "few"}), ContractError);
}

// ---- PR 10 satellites: latency-rate dominance property, error paths

TEST(ArbiterProperty, LatencyRateDominatesSlotGranularTdm) {
  // Randomized (slot, period, C): the latency-rate abstraction of a TDM
  // allocation is never tighter than the slot-granular bound.
  std::mt19937_64 rng(42);
  std::uniform_int_distribution<std::int64_t> sixteenths(1, 16);
  std::uniform_int_distribution<std::int64_t> wcet_64ths(1, 128);
  for (int trial = 0; trial < 200; ++trial) {
    const std::int64_t s = sixteenths(rng);
    const Duration period = milliseconds(Rational(1 + trial % 7));
    const Duration slot(period.seconds() * Rational(s, 16));
    const Duration wcet(period.seconds() * Rational(wcet_64ths(rng), 64));
    const sched::TdmAllocation tdm{slot, period};
    const Duration exact = tdm.response_time(wcet);
    const Duration abstracted = tdm.as_latency_rate().response_time(wcet);
    EXPECT_FALSE((abstracted - exact).is_negative())
        << "slot " << s << "/16, wcet " << wcet.seconds().to_string()
        << " s: latency-rate " << abstracted.seconds().to_string()
        << " < slot-granular " << exact.seconds().to_string();
  }
}

TEST(ArbiterProperty, LatencyRateDominatesRoundRobinServiceModel) {
  // Same property through the uniform ServiceModel, round-robin side:
  // 2Σ − C ≥ Σ for any C ≤ Σ.
  std::mt19937_64 rng(43);
  std::uniform_int_distribution<std::int64_t> wcet_64ths(1, 64);
  for (int trial = 0; trial < 200; ++trial) {
    sched::ServiceModel model;
    model.policy = sched::ArbiterPolicy::RoundRobin;
    const std::int64_t own = wcet_64ths(rng);
    model.wcet = milliseconds(Rational(own, 64));
    model.total_wcet = milliseconds(Rational(own + wcet_64ths(rng), 64));
    const Duration exact = model.response_time();
    const Duration abstracted =
        model.as_latency_rate().response_time(model.wcet);
    EXPECT_FALSE((abstracted - exact).is_negative());
  }
}

TEST(Platform, UnknownTaskAndProcessorErrorsAreLineAttributable) {
  sched::Platform platform;
  const auto cpu =
      platform.add_processor("cpu0", milliseconds(Rational(1)));
  platform.bind_task("known", cpu, milliseconds(Rational(1, 4)),
                     milliseconds(Rational(1, 8)));

  // Unknown task: the error names the task and carries the PR 4
  // file:line attribution suffix.
  try {
    (void)platform.response_time("ghost");
    FAIL() << "expected ContractError";
  } catch (const ContractError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("task 'ghost' is not bound"), std::string::npos)
        << what;
    EXPECT_NE(what.find("sched/platform.cpp:"), std::string::npos) << what;
  }

  // Out-of-range processor: the error names the index and the count.
  try {
    platform.bind_task("late", 7, milliseconds(Rational(1, 4)),
                       milliseconds(Rational(1, 8)));
    FAIL() << "expected ContractError";
  } catch (const ContractError& e) {
    const std::string what = e.what();
    EXPECT_NE(
        what.find("processor index 7 out of range (platform has 1 processor"),
        std::string::npos)
        << what;
    EXPECT_NE(what.find("sched/platform.cpp:"), std::string::npos) << what;
  }

  EXPECT_THROW((void)platform.service_model("ghost"), ContractError);
  EXPECT_THROW(platform.set_slot("ghost", milliseconds(Rational(1, 4))),
               ContractError);
  EXPECT_THROW((void)platform.wheel_period(3), ContractError);
  EXPECT_THROW((void)platform.slack(3), ContractError);

  // Policy-mismatched bind overloads are rejected naming both sides.
  try {
    platform.bind_task("rr-style", cpu, milliseconds(Rational(1, 8)));
    FAIL() << "expected ContractError";
  } catch (const ContractError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("runs a tdm arbiter"), std::string::npos) << what;
    EXPECT_NE(what.find("rr-style"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace vrdf
