// Fleet-scale parallel verification: the thread pool, the deterministic
// seed-derivation helper, the sharded sweep harness and its resumable
// journal.
//
// The load-bearing property is *scheduling-independence*: a FleetSweep
// report's canonical serialization must be bit-identical whether the
// sweep ran on 1, 2 or 8 workers, and whether it ran straight through or
// was interrupted and resumed from its journal.  Everything else (pool
// semantics, codec round-trips, published seed streams) exists to defend
// that property.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "io/fleet_journal.hpp"
#include "models/synthetic.hpp"
#include "sim/fleet.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/seed_stream.hpp"
#include "util/thread_pool.hpp"

namespace vrdf {
namespace {

using models::ModelClass;
using sim::ConstraintMode;
using sim::FleetItemResult;
using sim::FleetReport;
using sim::FleetSweep;
using sim::SweepSpec;
using util::ThreadPool;

// ------------------------------------------------------------ thread pool

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& future : futures) {
    future.get();
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, PropagatesTaskExceptionsThroughTheFuture) {
  ThreadPool pool(2);
  std::future<void> bad =
      pool.submit([] { throw ModelError("intentional test failure"); });
  std::future<void> good = pool.submit([] {});
  EXPECT_THROW(bad.get(), ModelError);
  good.get();  // a throwing sibling must not poison other tasks
}

TEST(ThreadPool, WaitIdleBlocksUntilAllTasksFinished) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 24; ++i) {
    (void)pool.submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ++done;
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 24);
}

TEST(ThreadPool, DestructorDrainsTheQueueDeterministically) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      (void)pool.submit([&done] { ++done; });
    }
    // Destructor runs here: every queued task must still execute.
  }
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPool, RejectsZeroWorkersAndEmptyTasks) {
  EXPECT_THROW(ThreadPool pool(0), ContractError);
  ThreadPool pool(1);
  EXPECT_THROW((void)pool.submit(std::function<void()>{}), ContractError);
}

// ------------------------------------------------------- seed derivation

TEST(SeedStream, PublishedDerivationsAreBitStable) {
  // Golden values: these are published — fleet journals, recorded seeds
  // and the PR 3 cyclic models all depend on them.  A mismatch here means
  // a silent break of every recorded seed.
  EXPECT_EQ(util::mix64(0), 0x0ULL);
  EXPECT_EQ(util::derive_seed(1, 0), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(util::derive_seed(1, 1), 0x910a2dec89025cc1ULL);
  EXPECT_EQ(util::derive_seed(42, 7), 0xeb7a07aacd555fc9ULL);
  EXPECT_EQ(util::decorrelate(5), 0x9e3779b97f4a7c10ULL);
}

TEST(SeedStream, DistinctIndicesYieldDistinctStreams) {
  for (std::uint64_t i = 1; i < 64; ++i) {
    EXPECT_NE(util::derive_seed(1, i), util::derive_seed(1, i - 1));
  }
}

// ------------------------------------------------------- thread-safe log

TEST(Log, ConcurrentEmitsNeverInterleaveMidLine) {
  std::ostringstream captured;
  std::streambuf* previous = std::cerr.rdbuf(captured.rdbuf());
  const log::Level saved = log::level();
  log::set_level(log::Level::Info);
  {
    ThreadPool pool(8);
    for (int t = 0; t < 8; ++t) {
      (void)pool.submit([t] {
        for (int i = 0; i < 50; ++i) {
          VRDF_LOG(Info) << "worker " << t << " line " << i << " payload";
        }
      });
    }
    pool.wait_idle();
  }
  log::set_level(saved);
  std::cerr.rdbuf(previous);

  std::istringstream lines(captured.str());
  std::string line;
  int complete = 0;
  while (std::getline(lines, line)) {
    // Every line is exactly one event: prefix, then an un-split payload.
    EXPECT_EQ(line.rfind("[vrdf INFO] worker ", 0), 0u) << line;
    EXPECT_NE(line.find(" payload"), std::string::npos) << line;
    ++complete;
  }
  EXPECT_EQ(complete, 8 * 50);
}

// -------------------------------------------------------- fleet sweeps

SweepSpec mixed_spec() {
  SweepSpec spec;
  // All five classes, both constraint placements, two headroom levels —
  // small per-cell counts keep the determinism matrix fast (the suite
  // runs the same sweep four times).
  spec.seeds_per_class = 3;
  spec.headroom_levels = {0, 2};
  spec.modes = {ConstraintMode::Sink, ConstraintMode::Source};
  spec.observe_firings = 120;
  spec.base_seed = 7;
  return spec;
}

TEST(FleetSweep, ExpansionSkipsSourceModeForSinkOnlyClasses) {
  const FleetSweep sweep(mixed_spec());
  // 5 classes x sink x 2 headrooms x 3 seeds + 3 source-capable classes
  // x 2 headrooms x 3 seeds.
  EXPECT_EQ(sweep.items().size(), 5u * 2 * 3 + 3u * 2 * 3);
  for (std::size_t i = 0; i < sweep.items().size(); ++i) {
    EXPECT_EQ(sweep.items()[i].index, i);
    EXPECT_EQ(sweep.items()[i].rng_seed, util::derive_seed(7, i));
    if (sweep.items()[i].mode == ConstraintMode::Source) {
      EXPECT_NE(sweep.items()[i].model_class, ModelClass::MultiConstraint);
      EXPECT_NE(sweep.items()[i].model_class, ModelClass::InteriorPinned);
    }
  }
}

TEST(FleetSweep, ReportIsBitIdenticalAcrossThreadCounts) {
  const FleetSweep sweep(mixed_spec());
  const FleetReport reference = sweep.run(1);
  EXPECT_EQ(reference.total_items,
            static_cast<std::int64_t>(sweep.items().size()));
  EXPECT_EQ(reference.failed, 0) << sim::canonical_text(reference);
  EXPECT_EQ(reference.rejected, 0) << sim::canonical_text(reference);
  EXPECT_EQ(reference.starvations, 0);
  EXPECT_GT(reference.firings, 0);
  EXPECT_GT(reference.total_capacity, 0);

  const std::string canonical = sim::canonical_text(reference);
  for (const std::size_t threads : {2u, 8u}) {
    const FleetReport parallel = sweep.run(threads);
    EXPECT_EQ(sim::canonical_text(parallel), canonical)
        << "thread count " << threads << " changed the report bytes";
    EXPECT_EQ(parallel.threads_used, threads);
  }
}

TEST(FleetSweep, FaultedSweepHoldsConstraintsAndNamesEveryBreach) {
  SweepSpec spec;
  spec.classes = {ModelClass::Chain, ModelClass::Cyclic,
                  ModelClass::MultiConstraint};
  spec.seeds_per_class = 4;
  spec.observe_firings = 120;
  spec.faulted = true;
  const FleetSweep sweep(spec);
  const FleetReport report = sweep.run(2);
  EXPECT_EQ(report.failed, 0) << sim::canonical_text(report);
  EXPECT_EQ(report.rejected, 0) << sim::canonical_text(report);
  EXPECT_EQ(report.starvations, 0);
  // Wherever a positive margin was injected, the monitor attributed the
  // ρ breach to the faulted actor.
  EXPECT_EQ(report.faults_named, report.faults_expected);
  EXPECT_GT(report.faults_expected, 0);
  // Faulted mode is part of the determinism contract too.
  EXPECT_EQ(sim::canonical_text(sweep.run(8)), sim::canonical_text(report));
}

TEST(FleetSweep, CustomGeneratorsRideThePipeline) {
  SweepSpec spec;
  spec.classes = {ModelClass::ForkJoin};
  spec.seeds_per_class = 5;
  spec.observe_firings = 150;
  spec.generator = [](const sim::FleetItem& item) {
    models::RandomForkJoinSpec fork_join;
    fork_join.seed = item.seed_ordinal;  // published per-seed schedule
    fork_join.stages = 1 + item.seed_ordinal % 2;
    models::SyntheticChain generated = models::make_random_fork_join(fork_join);
    models::SyntheticModel model;
    model.graph = std::move(generated.graph);
    model.constraints = {generated.constraint};
    return model;
  };
  const FleetSweep sweep(spec);
  const FleetReport report = sweep.run(2);
  EXPECT_EQ(report.passed, 5);
  EXPECT_EQ(report.failed + report.rejected, 0) << sim::canonical_text(report);
  EXPECT_NE(report.spec_summary.find("generator=custom"), std::string::npos);
}

// ------------------------------------------------------- item-line codec

TEST(FleetCodec, ItemLinesRoundTripIncludingMultilineDetails) {
  FleetItemResult result;
  result.item.index = 17;
  result.item.model_class = ModelClass::MultiConstraint;
  result.item.seed_ordinal = 9;
  result.item.headroom = 2;
  result.item.mode = ConstraintMode::Source;
  result.pass = false;
  result.rejected = false;
  result.starvation_count = 3;
  result.total_capacity = 1234;
  result.firings = 98765;
  result.max_lateness = Duration(Rational(7, 480));
  result.fault_margin_positive = true;
  result.fault_named = true;
  result.detail = "phase 2 starved;\n'p' waits for 3 tokens\\with backslash";

  const std::string line = sim::encode_item_line(result);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  FleetItemResult decoded;
  ASSERT_TRUE(sim::decode_item_line(line, &decoded)) << line;
  EXPECT_EQ(decoded.item.index, result.item.index);
  EXPECT_EQ(decoded.item.model_class, result.item.model_class);
  EXPECT_EQ(decoded.item.seed_ordinal, result.item.seed_ordinal);
  EXPECT_EQ(decoded.item.headroom, result.item.headroom);
  EXPECT_EQ(decoded.item.mode, result.item.mode);
  EXPECT_EQ(decoded.pass, result.pass);
  EXPECT_EQ(decoded.rejected, result.rejected);
  EXPECT_EQ(decoded.starvation_count, result.starvation_count);
  EXPECT_EQ(decoded.total_capacity, result.total_capacity);
  EXPECT_EQ(decoded.firings, result.firings);
  EXPECT_EQ(decoded.max_lateness.seconds(), result.max_lateness.seconds());
  EXPECT_EQ(decoded.fault_margin_positive, result.fault_margin_positive);
  EXPECT_EQ(decoded.fault_named, result.fault_named);
  EXPECT_EQ(decoded.detail, result.detail);
}

TEST(FleetCodec, MalformedLinesAreRefusedNotMisdecoded) {
  FleetItemResult scratch;
  EXPECT_FALSE(sim::decode_item_line("not an item line", &scratch));
  EXPECT_FALSE(sim::decode_item_line("item 3 class=chain", &scratch));
  EXPECT_FALSE(sim::decode_item_line(
      "item x class=chain seed=1 headroom=0 mode=sink pass=1 rejected=0 "
      "starvations=0 capacity=1 firings=1 lateness=0 fault_expected=0 "
      "fault_named=0 detail=",
      &scratch));
  EXPECT_FALSE(sim::decode_item_line(
      "item 3 class=hexagon seed=1 headroom=0 mode=sink pass=1 rejected=0 "
      "starvations=0 capacity=1 firings=1 lateness=0 fault_expected=0 "
      "fault_named=0 detail=",
      &scratch));
}

// ------------------------------------------------------ resumable journal

class TempPath {
 public:
  explicit TempPath(const char* name)
      : path_(::testing::TempDir() + name) {
    std::remove(path_.c_str());
  }
  ~TempPath() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& str() const { return path_; }

 private:
  std::string path_;
};

TEST(FleetJournal, ResumedRunMatchesUninterruptedBytes) {
  const FleetSweep sweep(mixed_spec());
  const std::string uninterrupted = sim::canonical_text(sweep.run(2));

  // Simulate the interrupt: journal only a prefix of the items, as if the
  // process died mid-sweep...
  TempPath path("fleet_resume.journal");
  {
    io::FleetJournal journal(path.str(), sweep.fingerprint(),
                             sweep.items().size());
    for (std::size_t i = 0; i < sweep.items().size() / 2; ++i) {
      journal.record(sweep.run_item(sweep.items()[i]));
    }
    EXPECT_EQ(journal.completed(), sweep.items().size() / 2);
  }
  // ...then resume: the journaled half merges back without recompute and
  // the report bytes match the uninterrupted run exactly.
  io::FleetJournal journal(path.str(), sweep.fingerprint(),
                           sweep.items().size());
  EXPECT_EQ(journal.completed(), sweep.items().size() / 2);
  const FleetReport resumed = sweep.run(8, &journal);
  EXPECT_EQ(resumed.items_resumed, sweep.items().size() / 2);
  EXPECT_EQ(sim::canonical_text(resumed), uninterrupted);
  EXPECT_EQ(journal.completed(), sweep.items().size());

  // A third pass finds everything journaled: zero recompute, same bytes.
  io::FleetJournal full(path.str(), sweep.fingerprint(),
                        sweep.items().size());
  EXPECT_EQ(full.completed(), sweep.items().size());
  const FleetReport replayed = sweep.run(1, &full);
  EXPECT_EQ(replayed.items_resumed, sweep.items().size());
  EXPECT_EQ(sim::canonical_text(replayed), uninterrupted);
}

TEST(FleetJournal, TornTrailingLineIsDroppedAndRerun) {
  const FleetSweep sweep(mixed_spec());
  TempPath path("fleet_torn.journal");
  {
    io::FleetJournal journal(path.str(), sweep.fingerprint(),
                             sweep.items().size());
    journal.record(sweep.run_item(sweep.items()[0]));
    journal.record(sweep.run_item(sweep.items()[1]));
  }
  {
    // An interrupt mid-write leaves a line without its newline.
    std::ofstream torn(path.str(), std::ios::app | std::ios::binary);
    torn << "item 2 class=chain seed=3 headroo";
  }
  io::FleetJournal journal(path.str(), sweep.fingerprint(),
                           sweep.items().size());
  EXPECT_EQ(journal.completed(), 2u);  // the torn record does not count
  const FleetReport report = sweep.run(2, &journal);
  EXPECT_EQ(report.items_resumed, 2u);
  EXPECT_EQ(sim::canonical_text(report),
            sim::canonical_text(sweep.run(2)));
}

TEST(FleetJournal, RefusesAForeignSpecFingerprint) {
  const FleetSweep sweep(mixed_spec());
  TempPath path("fleet_foreign.journal");
  {
    io::FleetJournal journal(path.str(), sweep.fingerprint(),
                             sweep.items().size());
    journal.record(sweep.run_item(sweep.items()[0]));
  }
  EXPECT_THROW(io::FleetJournal(path.str(), sweep.fingerprint() + 1,
                                sweep.items().size()),
               ModelError);
  EXPECT_THROW(io::FleetJournal(path.str(), sweep.fingerprint(),
                                sweep.items().size() + 1),
               ModelError);
  // Passing a journal opened for another spec to run() is refused too.
  SweepSpec other = mixed_spec();
  other.base_seed = 8;
  const FleetSweep other_sweep(other);
  io::FleetJournal journal(path.str(), sweep.fingerprint(),
                           sweep.items().size());
  EXPECT_THROW((void)other_sweep.run(1, &journal), ContractError);
}

TEST(FleetJournal, CorruptRecordsAreNamedByLine) {
  const FleetSweep sweep(mixed_spec());
  TempPath path("fleet_corrupt.journal");
  {
    io::FleetJournal journal(path.str(), sweep.fingerprint(),
                             sweep.items().size());
    journal.record(sweep.run_item(sweep.items()[0]));
  }
  {
    std::ofstream out(path.str(), std::ios::app | std::ios::binary);
    out << "item 1 class=chain not-a-record\n";
  }
  try {
    io::FleetJournal journal(path.str(), sweep.fingerprint(),
                             sweep.items().size());
    FAIL() << "corrupt journal record must be refused";
  } catch (const ModelError& error) {
    EXPECT_NE(std::string(error.what()).find("line 4"), std::string::npos)
        << error.what();
  }
}

// --------------------------------------- RandomModelSpec source placement

TEST(RandomModel, SourceConstrainedSpecPinsTheSource) {
  models::RandomModelSpec spec;
  spec.model_class = ModelClass::Chain;
  spec.seed = 3;
  spec.source_constrained = true;
  const models::SyntheticModel model = models::make_random_model(spec);
  ASSERT_EQ(model.constraints.size(), 1u);
  const auto view = model.graph.buffer_view();
  ASSERT_TRUE(view.has_value());
  ASSERT_FALSE(view->data_sources.empty());
  EXPECT_EQ(model.constraints.front().actor, view->data_sources.front());
}

}  // namespace
}  // namespace vrdf
