// Unit tests for rate sets, VRDF graph construction, chain recognition,
// validation, and the SDF/CSDF substrate (consistency, conversions).
#include <gtest/gtest.h>

#include <algorithm>

#include "dataflow/csdf_graph.hpp"
#include "dataflow/rate_set.hpp"
#include "dataflow/sdf_graph.hpp"
#include "dataflow/validation.hpp"
#include "dataflow/vrdf_graph.hpp"
#include "util/error.hpp"

namespace vrdf::dataflow {
namespace {

const Duration kRho = milliseconds(Rational(1));

TEST(RateSet, SingletonBasics) {
  const RateSet s = RateSet::singleton(3);
  EXPECT_EQ(s.min(), 3);
  EXPECT_EQ(s.max(), 3);
  EXPECT_TRUE(s.is_singleton());
  EXPECT_TRUE(s.contains(3));
  EXPECT_FALSE(s.contains(2));
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.to_string(), "{3}");
}

TEST(RateSet, ExplicitSetDeduplicatesAndSorts) {
  const RateSet s = RateSet::of({3, 2, 3, 5});
  EXPECT_EQ(s.min(), 2);
  EXPECT_EQ(s.max(), 5);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.values(), (std::vector<std::int64_t>{2, 3, 5}));
  EXPECT_TRUE(s.contains(3));
  EXPECT_FALSE(s.contains(4));
  EXPECT_EQ(s.to_string(), "{2,3,5}");
}

TEST(RateSet, IntervalBasics) {
  const RateSet s = RateSet::interval(0, 960);
  EXPECT_EQ(s.min(), 0);
  EXPECT_EQ(s.max(), 960);
  EXPECT_TRUE(s.contains_zero());
  EXPECT_EQ(s.size(), 961u);
  EXPECT_TRUE(s.contains(500));
  EXPECT_FALSE(s.contains(961));
  EXPECT_EQ(s.nth(0), 0);
  EXPECT_EQ(s.nth(960), 960);
  EXPECT_EQ(s.to_string(), "[0,960]");
}

TEST(RateSet, DegenerateIntervalBecomesSingleton) {
  const RateSet s = RateSet::interval(4, 4);
  EXPECT_TRUE(s.is_singleton());
  EXPECT_EQ(s.to_string(), "{4}");
}

TEST(RateSet, PfNRulesEnforced) {
  EXPECT_THROW(RateSet::singleton(0), ContractError);   // {0} excluded
  EXPECT_THROW(RateSet::singleton(-1), ContractError);
  EXPECT_THROW(RateSet::of({0}), ContractError);        // {0} excluded
  EXPECT_THROW(RateSet::of({-1, 2}), ContractError);
  EXPECT_THROW(RateSet::interval(0, 0), ContractError);
  EXPECT_THROW(RateSet::interval(5, 2), ContractError);
  EXPECT_NO_THROW(RateSet::of({0, 2}));  // zero alongside positive is fine
}

TEST(RateSet, EqualityAcrossRepresentations) {
  EXPECT_EQ(RateSet::of({1, 2, 3}), RateSet::interval(1, 3));
  EXPECT_EQ(RateSet::interval(1, 3), RateSet::of({1, 2, 3}));
  EXPECT_NE(RateSet::of({1, 3}), RateSet::interval(1, 3));
  EXPECT_EQ(RateSet::of({2, 3}), RateSet::of({3, 2}));
}

TEST(VrdfGraph, ActorsAndBuffers) {
  VrdfGraph g;
  const ActorId a = g.add_actor("a", kRho);
  const ActorId b = g.add_actor("b", kRho);
  const BufferEdges buf =
      g.add_buffer(a, b, RateSet::singleton(3), RateSet::of({2, 3}), 4);
  EXPECT_EQ(g.actor_count(), 2u);
  EXPECT_EQ(g.edge_count(), 2u);
  const Edge& data = g.edge(buf.data);
  const Edge& space = g.edge(buf.space);
  EXPECT_EQ(data.source, a);
  EXPECT_EQ(data.target, b);
  EXPECT_EQ(space.source, b);
  EXPECT_EQ(space.target, a);
  EXPECT_EQ(data.initial_tokens, 0);
  EXPECT_EQ(space.initial_tokens, 4);
  EXPECT_EQ(data.paired, buf.space);
  EXPECT_EQ(space.paired, buf.data);
  // Sec 3.3: π(e_ba) = λ(b), γ(e_ba) = ξ(b).
  EXPECT_EQ(space.production, data.consumption);
  EXPECT_EQ(space.consumption, data.production);
}

TEST(VrdfGraph, RejectsDuplicateNamesAndBadInputs) {
  VrdfGraph g;
  (void)g.add_actor("a", kRho);
  EXPECT_THROW(g.add_actor("a", kRho), ContractError);
  EXPECT_THROW(g.add_actor("", kRho), ContractError);
  EXPECT_THROW(g.add_actor("b", Duration()), ContractError);
}

TEST(VrdfGraph, FindActorByName) {
  VrdfGraph g;
  const ActorId a = g.add_actor("vMP3", kRho);
  EXPECT_EQ(g.find_actor("vMP3"), a);
  EXPECT_FALSE(g.find_actor("nope").has_value());
}

TEST(VrdfGraph, SetInitialTokens) {
  VrdfGraph g;
  const ActorId a = g.add_actor("a", kRho);
  const ActorId b = g.add_actor("b", kRho);
  const BufferEdges buf =
      g.add_buffer(a, b, RateSet::singleton(1), RateSet::singleton(1));
  g.set_initial_tokens(buf.space, 42);
  EXPECT_EQ(g.edge(buf.space).initial_tokens, 42);
  EXPECT_THROW(g.set_initial_tokens(buf.space, -1), ContractError);
}

TEST(VrdfGraph, ChainViewOrdersActorsAndBuffers) {
  VrdfGraph g;
  const ActorId c = g.add_actor("c", kRho);
  const ActorId a = g.add_actor("a", kRho);
  const ActorId b = g.add_actor("b", kRho);
  // Insert out of order: a -> b -> c.
  const BufferEdges bc =
      g.add_buffer(b, c, RateSet::singleton(1), RateSet::singleton(1));
  const BufferEdges ab =
      g.add_buffer(a, b, RateSet::singleton(1), RateSet::singleton(1));
  const auto view = g.chain_view();
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->actors, (std::vector<ActorId>{a, b, c}));
  ASSERT_EQ(view->buffers.size(), 2u);
  EXPECT_EQ(view->buffers[0].data, ab.data);
  EXPECT_EQ(view->buffers[1].data, bc.data);
}

TEST(VrdfGraph, ChainViewRejectsBareEdges) {
  VrdfGraph g;
  const ActorId a = g.add_actor("a", kRho);
  const ActorId b = g.add_actor("b", kRho);
  (void)g.add_edge(a, b, RateSet::singleton(1), RateSet::singleton(1));
  EXPECT_FALSE(g.chain_view().has_value());
}

TEST(VrdfGraph, ChainViewRejectsBranching) {
  VrdfGraph g;
  const ActorId a = g.add_actor("a", kRho);
  const ActorId b = g.add_actor("b", kRho);
  const ActorId c = g.add_actor("c", kRho);
  (void)g.add_buffer(a, b, RateSet::singleton(1), RateSet::singleton(1));
  (void)g.add_buffer(a, c, RateSet::singleton(1), RateSet::singleton(1));
  EXPECT_FALSE(g.chain_view().has_value());
}

TEST(VrdfGraph, BufferViewOnChainMatchesChainView) {
  VrdfGraph g;
  const ActorId c = g.add_actor("c", kRho);
  const ActorId a = g.add_actor("a", kRho);
  const ActorId b = g.add_actor("b", kRho);
  const BufferEdges bc =
      g.add_buffer(b, c, RateSet::singleton(1), RateSet::singleton(1));
  const BufferEdges ab =
      g.add_buffer(a, b, RateSet::singleton(1), RateSet::singleton(1));
  const auto view = g.buffer_view();
  ASSERT_TRUE(view.has_value());
  EXPECT_TRUE(view->is_chain);
  EXPECT_EQ(view->actors, (std::vector<ActorId>{a, b, c}));
  ASSERT_EQ(view->buffers.size(), 2u);
  EXPECT_EQ(view->buffers[0].data, ab.data);
  EXPECT_EQ(view->buffers[1].data, bc.data);
  EXPECT_EQ(view->data_sources, (std::vector<ActorId>{a}));
  EXPECT_EQ(view->data_sinks, (std::vector<ActorId>{c}));
}

TEST(VrdfGraph, BufferViewOnDiamond) {
  VrdfGraph g;
  const ActorId a = g.add_actor("a", kRho);
  const ActorId b = g.add_actor("b", kRho);
  const ActorId c = g.add_actor("c", kRho);
  const ActorId d = g.add_actor("d", kRho);
  const BufferEdges ab =
      g.add_buffer(a, b, RateSet::singleton(1), RateSet::singleton(1));
  const BufferEdges ac =
      g.add_buffer(a, c, RateSet::singleton(1), RateSet::singleton(1));
  const BufferEdges bd =
      g.add_buffer(b, d, RateSet::singleton(1), RateSet::singleton(1));
  const BufferEdges cd =
      g.add_buffer(c, d, RateSet::singleton(1), RateSet::singleton(1));
  const auto view = g.buffer_view();
  ASSERT_TRUE(view.has_value());
  EXPECT_FALSE(view->is_chain);
  EXPECT_EQ(view->actors.front(), a);
  EXPECT_EQ(view->actors.back(), d);
  // a's two out-buffers come first (insertion order among equals), then
  // the branch-to-join buffers.
  ASSERT_EQ(view->buffers.size(), 4u);
  EXPECT_EQ(view->buffers[0].data, ab.data);
  EXPECT_EQ(view->buffers[1].data, ac.data);
  EXPECT_EQ(view->out_buffers[a.index()],
            (std::vector<std::size_t>{0, 1}));
  ASSERT_EQ(view->in_buffers[d.index()].size(), 2u);
  std::vector<EdgeId> join_inputs{
      view->buffers[view->in_buffers[d.index()][0]].data,
      view->buffers[view->in_buffers[d.index()][1]].data};
  std::sort(join_inputs.begin(), join_inputs.end(),
            [](EdgeId x, EdgeId y) { return x.value() < y.value(); });
  EXPECT_EQ(join_inputs, (std::vector<EdgeId>{bd.data, cd.data}));
  EXPECT_EQ(view->data_sources, (std::vector<ActorId>{a}));
  EXPECT_EQ(view->data_sinks, (std::vector<ActorId>{d}));
  // All four diamond edges lie on the reconvergent cycle.
  EXPECT_EQ(view->on_reconvergent_path,
            (std::vector<bool>{true, true, true, true}));
}

TEST(VrdfGraph, BufferViewMarksChainSegmentsAsNonReconvergent) {
  // src → fork → {x, y} → join → snk: the two outer edges are bridges.
  VrdfGraph g;
  const ActorId src = g.add_actor("src", kRho);
  const ActorId fork = g.add_actor("fork", kRho);
  const ActorId x = g.add_actor("x", kRho);
  const ActorId y = g.add_actor("y", kRho);
  const ActorId join = g.add_actor("join", kRho);
  const ActorId snk = g.add_actor("snk", kRho);
  (void)g.add_buffer(src, fork, RateSet::singleton(1), RateSet::singleton(1));
  (void)g.add_buffer(fork, x, RateSet::singleton(1), RateSet::singleton(1));
  (void)g.add_buffer(fork, y, RateSet::singleton(1), RateSet::singleton(1));
  (void)g.add_buffer(x, join, RateSet::singleton(1), RateSet::singleton(1));
  (void)g.add_buffer(y, join, RateSet::singleton(1), RateSet::singleton(1));
  (void)g.add_buffer(join, snk, RateSet::singleton(1), RateSet::singleton(1));
  const auto view = g.buffer_view();
  ASSERT_TRUE(view.has_value());
  for (std::size_t pos = 0; pos < view->buffers.size(); ++pos) {
    const Edge& data = g.edge(view->buffers[pos].data);
    const bool is_segment_edge = data.source == src || data.target == snk;
    EXPECT_EQ(view->on_reconvergent_path[pos], !is_segment_edge)
        << "buffer " << pos;
  }
}

TEST(VrdfGraph, BufferViewRejectsBareEdgesAndDataCycles) {
  VrdfGraph g;
  const ActorId a = g.add_actor("a", kRho);
  const ActorId b = g.add_actor("b", kRho);
  (void)g.add_edge(a, b, RateSet::singleton(1), RateSet::singleton(1));
  EXPECT_FALSE(g.buffer_view().has_value());

  VrdfGraph h;
  const ActorId c = h.add_actor("c", kRho);
  const ActorId d = h.add_actor("d", kRho);
  (void)h.add_buffer(c, d, RateSet::singleton(1), RateSet::singleton(1));
  (void)h.add_buffer(d, c, RateSet::singleton(1), RateSet::singleton(1));
  EXPECT_FALSE(h.buffer_view().has_value());
}

TEST(VrdfGraph, BufferViewAllowsParallelBuffers) {
  VrdfGraph g;
  const ActorId a = g.add_actor("a", kRho);
  const ActorId b = g.add_actor("b", kRho);
  (void)g.add_buffer(a, b, RateSet::singleton(1), RateSet::singleton(1));
  (void)g.add_buffer(a, b, RateSet::singleton(2), RateSet::singleton(2));
  const auto view = g.buffer_view();
  ASSERT_TRUE(view.has_value());
  EXPECT_FALSE(view->is_chain);  // double fan-out is not the Sec 3.1 shape
  EXPECT_EQ(view->buffers.size(), 2u);
}

TEST(Validation, DagModelAcceptsForkJoin) {
  VrdfGraph g;
  const ActorId a = g.add_actor("a", kRho);
  const ActorId b = g.add_actor("b", kRho);
  const ActorId c = g.add_actor("c", kRho);
  const ActorId d = g.add_actor("d", kRho);
  (void)g.add_buffer(a, b, RateSet::singleton(1), RateSet::singleton(1));
  (void)g.add_buffer(a, c, RateSet::singleton(1), RateSet::singleton(1));
  (void)g.add_buffer(b, d, RateSet::singleton(1), RateSet::singleton(1));
  (void)g.add_buffer(c, d, RateSet::singleton(1), RateSet::singleton(1));
  EXPECT_TRUE(validate_dag_model(g).ok());
  // ...which the chain validator still rejects, with its Sec 3.1 message.
  const ValidationReport chain_report = validate_chain_model(g);
  ASSERT_FALSE(chain_report.ok());
  EXPECT_NE(chain_report.summary().find("do not form a chain"),
            std::string::npos);
}

TEST(Validation, DagModelRejectsDataCycle) {
  VrdfGraph g;
  const ActorId a = g.add_actor("a", kRho);
  const ActorId b = g.add_actor("b", kRho);
  (void)g.add_buffer(a, b, RateSet::singleton(1), RateSet::singleton(1));
  (void)g.add_buffer(b, a, RateSet::singleton(1), RateSet::singleton(1));
  const ValidationReport report = validate_dag_model(g);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("directed cycle"), std::string::npos);
}

TEST(Validation, DagModelReportsDisconnectionAndBareEdges) {
  VrdfGraph g;
  const ActorId a = g.add_actor("a", kRho);
  const ActorId b = g.add_actor("b", kRho);
  (void)g.add_actor("lonely", kRho);
  (void)g.add_edge(a, b, RateSet::singleton(1), RateSet::singleton(1));
  const ValidationReport report = validate_dag_model(g);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("not weakly connected"), std::string::npos);
  EXPECT_NE(report.summary().find("not part of a buffer pair"),
            std::string::npos);
}

TEST(Validation, AcceptsConsistentChain) {
  VrdfGraph g;
  const ActorId a = g.add_actor("a", kRho);
  const ActorId b = g.add_actor("b", kRho);
  (void)g.add_buffer(a, b, RateSet::singleton(3), RateSet::of({2, 3}));
  const ValidationReport report = validate_chain_model(g);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(Validation, ReportsEmptyGraph) {
  VrdfGraph g;
  EXPECT_FALSE(validate_chain_model(g).ok());
}

TEST(Validation, ReportsUnpairedEdge) {
  VrdfGraph g;
  const ActorId a = g.add_actor("a", kRho);
  const ActorId b = g.add_actor("b", kRho);
  (void)g.add_edge(a, b, RateSet::singleton(1), RateSet::singleton(1));
  const ValidationReport report = validate_chain_model(g);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("not part of a buffer pair"),
            std::string::npos);
}

TEST(Validation, ReportsDisconnectedGraph) {
  VrdfGraph g;
  const ActorId a = g.add_actor("a", kRho);
  const ActorId b = g.add_actor("b", kRho);
  (void)g.add_actor("lonely", kRho);
  (void)g.add_buffer(a, b, RateSet::singleton(1), RateSet::singleton(1));
  EXPECT_FALSE(validate_chain_model(g).ok());
}

TEST(SdfGraph, RepetitionVectorOfChain) {
  SdfGraph g;
  const auto a = g.add_actor("a", kRho);
  const auto b = g.add_actor("b", kRho);
  const auto c = g.add_actor("c", kRho);
  (void)g.add_edge(a, b, 2, 3);
  (void)g.add_edge(b, c, 1, 2);
  const auto reps = g.repetition_vector();
  ASSERT_TRUE(reps.has_value());
  // q_a·2 = q_b·3, q_b·1 = q_c·2  =>  q = (3, 2, 1).
  EXPECT_EQ(*reps, (std::vector<std::int64_t>{3, 2, 1}));
  EXPECT_TRUE(g.is_consistent());
}

TEST(SdfGraph, DetectsInconsistency) {
  SdfGraph g;
  const auto a = g.add_actor("a", kRho);
  const auto b = g.add_actor("b", kRho);
  (void)g.add_edge(a, b, 2, 3);
  (void)g.add_edge(a, b, 1, 1);  // demands q_a = q_b, contradiction
  EXPECT_FALSE(g.repetition_vector().has_value());
  EXPECT_FALSE(g.is_consistent());
}

TEST(SdfGraph, CycleWithConsistentRatesIsConsistent) {
  SdfGraph g;
  const auto a = g.add_actor("a", kRho);
  const auto b = g.add_actor("b", kRho);
  (void)g.add_edge(a, b, 3, 2);
  (void)g.add_edge(b, a, 2, 3);
  const auto reps = g.repetition_vector();
  ASSERT_TRUE(reps.has_value());
  EXPECT_EQ(*reps, (std::vector<std::int64_t>{2, 3}));
}

TEST(SdfGraph, Mp3RatesRepetitionVector) {
  SdfGraph g;
  const auto br = g.add_actor("br", kRho);
  const auto mp3 = g.add_actor("mp3", kRho);
  const auto src = g.add_actor("src", kRho);
  const auto dac = g.add_actor("dac", kRho);
  (void)g.add_edge(br, mp3, 2048, 960);
  (void)g.add_edge(mp3, src, 1152, 480);
  (void)g.add_edge(src, dac, 441, 1);
  const auto reps = g.repetition_vector();
  ASSERT_TRUE(reps.has_value());
  // One hyperperiod: 75 BR blocks = 160 frames = 384 SRC firings = 169344
  // DAC ticks.
  EXPECT_EQ(*reps, (std::vector<std::int64_t>{75, 160, 384, 169344}));
}

TEST(SdfGraph, ToVrdfPreservesStructure) {
  SdfGraph g;
  const auto a = g.add_actor("a", kRho);
  const auto b = g.add_actor("b", kRho);
  (void)g.add_edge(a, b, 2, 3, 5);
  const VrdfGraph v = g.to_vrdf();
  EXPECT_EQ(v.actor_count(), 2u);
  EXPECT_EQ(v.edge_count(), 1u);
  const Edge& e = v.edge(v.edges()[0]);
  EXPECT_EQ(e.production, RateSet::singleton(2));
  EXPECT_EQ(e.consumption, RateSet::singleton(3));
  EXPECT_EQ(e.initial_tokens, 5);
}

TEST(CsdfGraph, RepetitionVectorCountsFirings) {
  CsdfGraph g;
  const auto a = g.add_actor("a", {kRho, kRho});        // 2 phases
  const auto b = g.add_actor("b", {kRho, kRho, kRho});  // 3 phases
  // a produces (1,2)=3 per cycle; b consumes (1,0,1)=2 per cycle.
  (void)g.add_edge(a, b, {1, 2}, {1, 0, 1});
  const auto reps = g.repetition_vector();
  ASSERT_TRUE(reps.has_value());
  // Cycles: q_a·3 = q_b·2 => (2, 3) cycles => (4, 9) firings.
  EXPECT_EQ(*reps, (std::vector<std::int64_t>{4, 9}));
}

TEST(CsdfGraph, RejectsPhaseLengthMismatch) {
  CsdfGraph g;
  const auto a = g.add_actor("a", {kRho, kRho});
  const auto b = g.add_actor("b", {kRho});
  EXPECT_THROW((void)g.add_edge(a, b, {1}, {1}), ContractError);
}

TEST(CsdfGraph, RejectsAllZeroPhaseSequences) {
  CsdfGraph g;
  const auto a = g.add_actor("a", {kRho, kRho});
  const auto b = g.add_actor("b", {kRho});
  EXPECT_THROW((void)g.add_edge(a, b, {0, 0}, {1}), ContractError);
}

TEST(CsdfGraph, ToSdfAggregatesCycles) {
  CsdfGraph g;
  const auto a = g.add_actor("a", {kRho, kRho});
  const auto b = g.add_actor("b", {kRho});
  (void)g.add_edge(a, b, {1, 2}, {3}, 7);
  const SdfGraph s = g.to_sdf();
  const SdfEdge& e = s.edge(graph::EdgeId(0));
  EXPECT_EQ(e.production, 3);
  EXPECT_EQ(e.consumption, 3);
  EXPECT_EQ(e.initial_tokens, 7);
  EXPECT_EQ(s.actor(graph::NodeId(0)).response_time,
            milliseconds(Rational(2)));
}

TEST(CsdfGraph, ToVrdfAbstractsPhasesToSets) {
  CsdfGraph g;
  const auto a = g.add_actor("a", {kRho, milliseconds(Rational(3))});
  const auto b = g.add_actor("b", {kRho});
  (void)g.add_edge(a, b, {1, 2}, {3});
  const VrdfGraph v = g.to_vrdf();
  const Edge& e = v.edge(v.edges()[0]);
  EXPECT_EQ(e.production, RateSet::of({1, 2}));
  EXPECT_EQ(e.consumption, RateSet::singleton(3));
  // Response time is the per-phase maximum.
  EXPECT_EQ(v.actor(graph::NodeId(0)).response_time, milliseconds(Rational(3)));
}

TEST(CsdfGraph, InconsistentGraphDetected) {
  CsdfGraph g;
  const auto a = g.add_actor("a", {kRho});
  const auto b = g.add_actor("b", {kRho});
  (void)g.add_edge(a, b, {2}, {3});
  (void)g.add_edge(a, b, {1}, {1});
  EXPECT_FALSE(g.is_consistent());
}

}  // namespace
}  // namespace vrdf::dataflow
