// Tests for the deadlock-freedom analysis, cross-validated against
// simulation search.
#include <gtest/gtest.h>

#include "analysis/deadlock.hpp"
#include "models/mp3.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"

namespace vrdf::analysis {
namespace {

using dataflow::RateSet;

TEST(Deadlock, ConstantPairFormula) {
  EXPECT_EQ(min_deadlock_free_capacity(3, 3), 3);   // Fig 1, n ≡ 3
  EXPECT_EQ(min_deadlock_free_capacity(3, 2), 4);   // Fig 1, n ≡ 2
  EXPECT_EQ(min_deadlock_free_capacity(1, 1), 1);
  EXPECT_EQ(min_deadlock_free_capacity(441, 1), 441);
  EXPECT_EQ(min_deadlock_free_capacity(4, 6), 8);
  EXPECT_THROW((void)min_deadlock_free_capacity(0, 1), ContractError);
}

TEST(Deadlock, PairCapacityForAllSequences) {
  // Fig 1: pi_max + gamma_max - gcd(3,2,3) = 5.  Note this exceeds both
  // constant-sequence minima (3 and 4): mixed sequences can park the
  // buffer at (data 2, space 2) where pending quanta 3/3 deadlock.
  EXPECT_EQ(min_deadlock_free_pair_capacity(RateSet::singleton(3),
                                            RateSet::of({2, 3})),
            5);
  // Zero quanta never bind; with only 3s left g = 3.
  EXPECT_EQ(min_deadlock_free_pair_capacity(RateSet::singleton(3),
                                            RateSet::of({0, 3})),
            3);
  // The MP3 reader pair: g = 1 over [1,960] u {2048}.
  EXPECT_EQ(min_deadlock_free_pair_capacity(RateSet::singleton(2048),
                                            RateSet::interval(0, 960)),
            2048 + 960 - 1);
  // Singleton sets degenerate to the classical formula.
  EXPECT_EQ(min_deadlock_free_pair_capacity(RateSet::singleton(4),
                                            RateSet::singleton(6)),
            8);
}

TEST(Deadlock, MixedSequenceBeatsConstantMinima) {
  // The adversarial trace behind the 5: capacity 4 survives both constant
  // sequences but deadlocks on 2,3,2 followed by a pending 3.
  const auto survives = [](std::int64_t capacity,
                           std::unique_ptr<sim::QuantumSource> source) {
    dataflow::VrdfGraph g;
    const auto a = g.add_actor("a", milliseconds(Rational(1)));
    const auto b = g.add_actor("b", milliseconds(Rational(1)));
    const auto buf =
        g.add_buffer(a, b, RateSet::singleton(3), RateSet::of({2, 3}), capacity);
    sim::Simulator sim(g);
    sim.set_quantum_source(b, buf.data, std::move(source));
    sim.set_default_sources(1);
    sim::StopCondition stop;
    stop.firing_target = sim::StopCondition::FiringTarget{b, 64};
    return sim.run(stop).reason == sim::StopReason::ReachedFiringTarget;
  };
  EXPECT_TRUE(survives(4, sim::constant_source(3)));
  EXPECT_TRUE(survives(4, sim::constant_source(2)));
  EXPECT_FALSE(survives(4, sim::scripted_source({2, 3, 2}, 3)));
  EXPECT_TRUE(survives(5, sim::scripted_source({2, 3, 2}, 3)));
}

TEST(Deadlock, ChainCapacitiesInOrder) {
  const models::Mp3Playback app = models::make_mp3_playback();
  const std::vector<std::int64_t> minima =
      min_deadlock_free_chain_capacities(app.graph);
  ASSERT_EQ(minima.size(), 3u);
  EXPECT_EQ(minima[0], 2048 + 960 - 1);
  EXPECT_EQ(minima[1], 1152 + 480 - 96);
  EXPECT_EQ(minima[2], 441);
}

TEST(Deadlock, ChainRejectsNonChain) {
  dataflow::VrdfGraph g;
  const auto a = g.add_actor("a", milliseconds(Rational(1)));
  const auto b = g.add_actor("b", milliseconds(Rational(1)));
  (void)g.add_edge(a, b, RateSet::singleton(1), RateSet::singleton(1));
  EXPECT_THROW((void)min_deadlock_free_chain_capacities(g), ModelError);
}

// Cross-validation: the formula must equal the simulation-search minimum
// for every constant quantum pair in a small grid.
class DeadlockGrid
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t>> {};

TEST_P(DeadlockGrid, FormulaMatchesSimulationSearch) {
  const auto [p, c] = GetParam();
  const auto deadlock_free = [&](std::int64_t capacity) {
    dataflow::VrdfGraph g;
    const auto a = g.add_actor("a", milliseconds(Rational(1)));
    const auto b = g.add_actor("b", milliseconds(Rational(1)));
    (void)g.add_buffer(a, b, RateSet::singleton(p), RateSet::singleton(c),
                       capacity);
    sim::Simulator sim(g);
    sim.set_default_sources(1);
    sim::StopCondition stop;
    stop.firing_target = sim::StopCondition::FiringTarget{b, 64};
    return sim.run(stop).reason == sim::StopReason::ReachedFiringTarget;
  };
  const std::int64_t formula = min_deadlock_free_capacity(p, c);
  EXPECT_TRUE(deadlock_free(formula)) << p << '/' << c;
  EXPECT_FALSE(deadlock_free(formula - 1)) << p << '/' << c;
}

INSTANTIATE_TEST_SUITE_P(
    SmallGrid, DeadlockGrid,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6, 8),
                       ::testing::Values(1, 2, 3, 4, 5, 6, 8)));

TEST(Deadlock, VariableSequenceSurvivesAtPairCapacity) {
  // Random {2,3} sequences never deadlock at the all-sequence capacity 5.
  dataflow::VrdfGraph g;
  const auto a = g.add_actor("a", milliseconds(Rational(1)));
  const auto b = g.add_actor("b", milliseconds(Rational(1)));
  const auto buf =
      g.add_buffer(a, b, RateSet::singleton(3), RateSet::of({2, 3}), 5);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    sim::Simulator sim(g);
    sim.set_quantum_source(
        b, buf.data, sim::uniform_random_source(RateSet::of({2, 3}), seed));
    sim.set_default_sources(seed);
    sim::StopCondition stop;
    stop.firing_target = sim::StopCondition::FiringTarget{b, 500};
    EXPECT_EQ(sim.run(stop).reason, sim::StopReason::ReachedFiringTarget)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace vrdf::analysis
