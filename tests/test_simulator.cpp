// Unit tests for the discrete-event simulator: firing semantics, blocking,
// back-pressure, deadlock, periodic activation, metrics and determinism.
#include <gtest/gtest.h>

#include "dataflow/vrdf_graph.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"

namespace vrdf::sim {
namespace {

using dataflow::ActorId;
using dataflow::BufferEdges;
using dataflow::RateSet;
using dataflow::VrdfGraph;

const Duration kMs = milliseconds(Rational(1));

struct TwoActorFixture {
  VrdfGraph graph;
  ActorId producer;
  ActorId consumer;
  BufferEdges buffer;
};

TwoActorFixture make_pair(std::int64_t production, std::int64_t consumption,
                          std::int64_t capacity, Duration rho_p, Duration rho_c) {
  TwoActorFixture f;
  f.producer = f.graph.add_actor("p", rho_p);
  f.consumer = f.graph.add_actor("c", rho_c);
  f.buffer = f.graph.add_buffer(f.producer, f.consumer,
                                RateSet::singleton(production),
                                RateSet::singleton(consumption), capacity);
  return f;
}

TEST(Simulator, TokensConsumedAtStartProducedAtFinish) {
  // Producer: 2 tokens per firing, ρ = 1 ms, capacity 2.
  TwoActorFixture f = make_pair(2, 2, 2, kMs, kMs);
  Simulator sim(f.graph);
  sim.set_default_sources(1);
  sim.record_firings(f.producer);
  sim.record_firings(f.consumer);
  StopCondition stop;
  stop.until_time = TimePoint(Rational(1, 100));  // 10 ms
  (void)sim.run(stop);

  const auto& p = sim.firings(f.producer);
  const auto& c = sim.firings(f.consumer);
  ASSERT_GE(p.size(), 2u);
  ASSERT_GE(c.size(), 2u);
  // First producer firing: starts at 0 (space available), finishes at 1 ms.
  EXPECT_EQ(p[0].start, TimePoint());
  EXPECT_EQ(p[0].finish, TimePoint() + kMs);
  // Consumer can only start once data exists: at 1 ms.
  EXPECT_EQ(c[0].start, TimePoint() + kMs);
  // Producer's second firing needs space back: consumer finishes at 2 ms.
  EXPECT_EQ(p[1].start, TimePoint() + kMs * Rational(2));
}

TEST(Simulator, NoSelfOverlapEvenWhenTokensAbound) {
  // Huge capacity: the producer is only limited by its response time.
  TwoActorFixture f = make_pair(1, 1, 1000, kMs, kMs);
  Simulator sim(f.graph);
  sim.set_default_sources(1);
  sim.record_firings(f.producer, 64);
  StopCondition stop;
  stop.until_time = TimePoint(Rational(1, 100));
  (void)sim.run(stop);
  const auto& p = sim.firings(f.producer);
  ASSERT_GE(p.size(), 3u);
  for (std::size_t k = 1; k < p.size(); ++k) {
    EXPECT_GE((p[k].start - p[k - 1].start), kMs);
  }
}

TEST(Simulator, DeadlockDetectedWhenCapacityTooSmall) {
  // Producer needs 3 space but capacity is 2: nothing can ever fire.
  TwoActorFixture f = make_pair(3, 3, 2, kMs, kMs);
  Simulator sim(f.graph);
  sim.set_default_sources(1);
  StopCondition stop;
  stop.until_time = TimePoint(Rational(1));
  const RunResult result = sim.run(stop);
  EXPECT_EQ(result.reason, StopReason::Deadlock);
  EXPECT_EQ(result.total_firings, 0);
}

TEST(Simulator, DeadlockReportsBlockedWaits) {
  // Same deadlock as above: the producer waits for 3 free containers on a
  // capacity-2 buffer, the consumer waits for 3 tokens that never come.
  TwoActorFixture f = make_pair(3, 3, 2, kMs, kMs);
  Simulator sim(f.graph);
  sim.set_default_sources(1);
  StopCondition stop;
  stop.until_time = TimePoint(Rational(1));
  const RunResult result = sim.run(stop);
  ASSERT_TRUE(result.deadlocked());
  ASSERT_EQ(result.blocked.size(), 2u);

  const BlockedWait* producer_wait = nullptr;
  const BlockedWait* consumer_wait = nullptr;
  for (const BlockedWait& wait : result.blocked) {
    (wait.actor == f.producer ? producer_wait : consumer_wait) = &wait;
  }
  ASSERT_NE(producer_wait, nullptr);
  ASSERT_NE(consumer_wait, nullptr);

  EXPECT_EQ(producer_wait->edge, f.buffer.space);
  EXPECT_TRUE(producer_wait->waiting_for_space);
  EXPECT_EQ(producer_wait->needed, 3);
  EXPECT_EQ(producer_wait->available, 2);

  EXPECT_EQ(consumer_wait->edge, f.buffer.data);
  EXPECT_FALSE(consumer_wait->waiting_for_space);
  EXPECT_EQ(consumer_wait->needed, 3);
  EXPECT_EQ(consumer_wait->available, 0);
}

TEST(Simulator, BlockedWaitsEmptyWithoutDeadlock) {
  TwoActorFixture f = make_pair(2, 2, 2, kMs, kMs);
  Simulator sim(f.graph);
  sim.set_default_sources(1);
  StopCondition stop;
  stop.until_time = TimePoint(Rational(1, 100));
  const RunResult result = sim.run(stop);
  EXPECT_NE(result.reason, StopReason::Deadlock);
  EXPECT_TRUE(result.blocked.empty());
}

TEST(Simulator, Fig1MinimalCapacities) {
  // The introduction's observation, replayed in simulation: with n ≡ 3 a
  // capacity of 3 suffices, with n ≡ 2 it deadlocks and 4 is needed.
  const auto runs = [](std::int64_t consumption, std::int64_t capacity) {
    VrdfGraph g;
    const ActorId a = g.add_actor("wa", kMs);
    const ActorId b = g.add_actor("wb", kMs);
    const BufferEdges buf = g.add_buffer(a, b, RateSet::singleton(3),
                                         RateSet::of({2, 3}), capacity);
    Simulator sim(g);
    sim.set_quantum_source(b, buf.data, constant_source(consumption));
    sim.set_default_sources(1);
    StopCondition stop;
    stop.firing_target = StopCondition::FiringTarget{b, 50};
    return sim.run(stop).reason == StopReason::ReachedFiringTarget;
  };
  EXPECT_TRUE(runs(3, 3));
  EXPECT_FALSE(runs(2, 3));  // sized for the max quantum, starves on 2
  EXPECT_TRUE(runs(2, 4));
}

TEST(Simulator, ZeroQuantumFiringsTransferNothingButTakeTime) {
  VrdfGraph g;
  const ActorId a = g.add_actor("a", kMs);
  const ActorId b = g.add_actor("b", kMs);
  const BufferEdges buf =
      g.add_buffer(a, b, RateSet::singleton(1), RateSet::of({0, 1}), 4);
  Simulator sim(g);
  // Consumer alternates 0,1,0,1,...
  sim.set_quantum_source(b, buf.data, cyclic_source({0, 1}));
  sim.set_default_sources(1);
  sim.record_firings(b, 16);
  StopCondition stop;
  stop.firing_target = StopCondition::FiringTarget{b, 4};
  const RunResult result = sim.run(stop);
  EXPECT_EQ(result.reason, StopReason::ReachedFiringTarget);
  const auto& c = sim.firings(b);
  // Firing 0 consumes nothing: starts immediately at t = 0.
  EXPECT_EQ(c[0].start, TimePoint());
  // Consumptions only happen on odd firings.
  EXPECT_EQ(sim.edge_metrics(buf.data).consumed_total, 2);
}

TEST(Simulator, QuantumOutsideRateSetIsAModelError) {
  TwoActorFixture f = make_pair(2, 2, 8, kMs, kMs);
  Simulator sim(f.graph);
  sim.set_quantum_source(f.producer, f.buffer.data, constant_source(3));
  sim.set_default_sources(1);
  StopCondition stop;
  stop.until_time = TimePoint(Rational(1));
  EXPECT_THROW((void)sim.run(stop), ModelError);
}

TEST(Simulator, MissingSourceIsAContractError) {
  VrdfGraph g;
  const ActorId a = g.add_actor("a", kMs);
  const ActorId b = g.add_actor("b", kMs);
  (void)g.add_buffer(a, b, RateSet::of({1, 2}), RateSet::singleton(1), 4);
  Simulator sim(g);  // no sources installed at all
  StopCondition stop;
  stop.until_time = TimePoint(Rational(1));
  EXPECT_THROW((void)sim.run(stop), ContractError);
}

TEST(Simulator, PairedPortsShareOneQuantumStream) {
  // The consumer returns exactly as much space as it consumed data: with a
  // random consumption stream, produced(space) must track consumed(data).
  VrdfGraph g;
  const ActorId a = g.add_actor("a", kMs);
  const ActorId b = g.add_actor("b", kMs);
  const BufferEdges buf =
      g.add_buffer(a, b, RateSet::singleton(3), RateSet::of({1, 2, 3}), 12);
  Simulator sim(g);
  sim.set_quantum_source(b, buf.data, uniform_random_source(RateSet::of({1, 2, 3}), 7));
  sim.set_default_sources(1);
  StopCondition stop;
  stop.firing_target = StopCondition::FiringTarget{b, 100};
  const RunResult result = sim.run(stop);
  ASSERT_EQ(result.reason, StopReason::ReachedFiringTarget);
  // Consumer side: idle at the stop (it just finished firing 100), so the
  // space it produced must equal the data it consumed, exactly.
  EXPECT_EQ(sim.edge_metrics(buf.data).consumed_total,
            sim.edge_metrics(buf.space).produced_total);
  // Producer side: it may be mid-firing (space claimed, data not yet
  // produced), so the difference is at most one production quantum.
  const std::int64_t claimed = sim.edge_metrics(buf.space).consumed_total -
                               sim.edge_metrics(buf.data).produced_total;
  EXPECT_GE(claimed, 0);
  EXPECT_LE(claimed, 3);
}

TEST(Simulator, TokenConservationPerBuffer) {
  // data + space + in-flight == capacity at every quiescent point; at run
  // end (no actor mid-firing after a finish-aligned stop) the in-flight
  // part is zero for actors that are idle.
  TwoActorFixture f = make_pair(2, 1, 7, kMs, kMs * Rational(3));
  Simulator sim(f.graph);
  sim.set_default_sources(1);
  StopCondition stop;
  stop.firing_target = StopCondition::FiringTarget{f.consumer, 50};
  (void)sim.run(stop);
  const auto& data = sim.edge_metrics(f.buffer.data);
  const auto& space = sim.edge_metrics(f.buffer.space);
  // Tokens never created or destroyed: produced-consumed == current-initial.
  EXPECT_EQ(data.produced_total - data.consumed_total, data.tokens);
  EXPECT_EQ(space.produced_total - space.consumed_total, space.tokens - 7);
  // Data high-water never exceeds the capacity.
  EXPECT_LE(data.max_tokens, 7);
  EXPECT_GE(space.min_tokens, 0);
}

TEST(Simulator, StrictlyPeriodicActorFiresOnSchedule) {
  TwoActorFixture f = make_pair(1, 1, 4, kMs, kMs);
  Simulator sim(f.graph);
  sim.set_default_sources(1);
  const Duration period = kMs * Rational(2);
  const TimePoint offset = TimePoint() + kMs * Rational(5);
  sim.set_actor_mode(f.consumer, ActorMode::strictly_periodic(offset, period));
  sim.record_firings(f.consumer, 16);
  StopCondition stop;
  stop.firing_target = StopCondition::FiringTarget{f.consumer, 5};
  const RunResult result = sim.run(stop);
  ASSERT_EQ(result.reason, StopReason::ReachedFiringTarget);
  EXPECT_TRUE(result.starvations.empty());
  const auto& c = sim.firings(f.consumer);
  for (std::size_t k = 0; k < c.size(); ++k) {
    EXPECT_EQ(c[k].start,
              offset + period * Rational(static_cast<std::int64_t>(k)));
  }
}

TEST(Simulator, StarvationRecordedWhenPeriodicActorMissesActivation) {
  // Offset 0: no data yet (producer needs 1 ms), so firing 0 is late.
  TwoActorFixture f = make_pair(1, 1, 4, kMs, kMs);
  Simulator sim(f.graph);
  sim.set_default_sources(1);
  sim.set_actor_mode(f.consumer,
                     ActorMode::strictly_periodic(TimePoint(), kMs * Rational(2)));
  StopCondition stop;
  stop.firing_target = StopCondition::FiringTarget{f.consumer, 3};
  const RunResult result = sim.run(stop);
  ASSERT_EQ(result.reason, StopReason::ReachedFiringTarget);
  ASSERT_FALSE(result.starvations.empty());
  EXPECT_EQ(result.starvations[0].firing, 0);
  EXPECT_EQ(result.starvations[0].scheduled, TimePoint());
  ASSERT_TRUE(result.starvations[0].actual_start.has_value());
  EXPECT_EQ(*result.starvations[0].actual_start, TimePoint() + kMs);
  EXPECT_GT(sim.actor_metrics(f.consumer).starvation_count, 0);
}

TEST(Simulator, RateLimitedActorKeepsMinimumGap) {
  TwoActorFixture f = make_pair(1, 1, 10, kMs, kMs);
  Simulator sim(f.graph);
  sim.set_default_sources(1);
  const Duration gap = kMs * Rational(3);
  sim.set_actor_mode(f.consumer, ActorMode::rate_limited(gap));
  sim.record_firings(f.consumer, 16);
  StopCondition stop;
  stop.firing_target = StopCondition::FiringTarget{f.consumer, 5};
  (void)sim.run(stop);
  const auto& c = sim.firings(f.consumer);
  ASSERT_GE(c.size(), 2u);
  for (std::size_t k = 1; k < c.size(); ++k) {
    EXPECT_GE(c[k].start - c[k - 1].start, gap);
  }
}

TEST(Simulator, DeterministicAcrossRuns) {
  const auto run_once = [] {
    VrdfGraph g;
    const ActorId a = g.add_actor("a", kMs);
    const ActorId b = g.add_actor("b", kMs * Rational(2));
    const BufferEdges buf =
        g.add_buffer(a, b, RateSet::of({1, 3}), RateSet::of({2, 4}), 16);
    Simulator sim(g);
    sim.set_default_sources(42);
    sim.record_firings(b, 256);
    StopCondition stop;
    stop.firing_target = StopCondition::FiringTarget{b, 100};
    (void)sim.run(stop);
    std::vector<Rational> starts;
    for (const FiringRecord& r : sim.firings(b)) {
      starts.push_back(r.start.seconds());
    }
    (void)buf;
    return starts;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Simulator, TransferRecordsMatchMetrics) {
  TwoActorFixture f = make_pair(2, 3, 9, kMs, kMs);
  Simulator sim(f.graph);
  sim.set_default_sources(1);
  sim.record_transfers(f.buffer.data);
  StopCondition stop;
  stop.firing_target = StopCondition::FiringTarget{f.consumer, 10};
  (void)sim.run(stop);
  const auto& productions = sim.production_events(f.buffer.data);
  const auto& consumptions = sim.consumption_events(f.buffer.data);
  ASSERT_FALSE(productions.empty());
  ASSERT_FALSE(consumptions.empty());
  EXPECT_EQ(productions.back().cumulative,
            sim.edge_metrics(f.buffer.data).produced_total);
  EXPECT_EQ(consumptions.back().cumulative,
            sim.edge_metrics(f.buffer.data).consumed_total);
  // Cumulative counts are strictly increasing by the event count.
  for (std::size_t i = 1; i < productions.size(); ++i) {
    EXPECT_EQ(productions[i].cumulative,
              productions[i - 1].cumulative + productions[i].count);
    EXPECT_GE(productions[i].time, productions[i - 1].time);
  }
}

TEST(Simulator, RunCanBeContinued) {
  TwoActorFixture f = make_pair(1, 1, 4, kMs, kMs);
  Simulator sim(f.graph);
  sim.set_default_sources(1);
  StopCondition first;
  first.firing_target = StopCondition::FiringTarget{f.consumer, 5};
  (void)sim.run(first);
  const std::int64_t after_first = sim.actor_metrics(f.consumer).firings_finished;
  StopCondition second;
  second.firing_target = StopCondition::FiringTarget{f.consumer, 10};
  (void)sim.run(second);
  EXPECT_EQ(after_first, 5);
  EXPECT_EQ(sim.actor_metrics(f.consumer).firings_finished, 10);
}

TEST(Simulator, EventBudgetStopsRunawayRuns) {
  TwoActorFixture f = make_pair(1, 1, 4, kMs, kMs);
  Simulator sim(f.graph);
  sim.set_default_sources(1);
  StopCondition stop;
  stop.max_firings = 10;
  const RunResult result = sim.run(stop);
  EXPECT_EQ(result.reason, StopReason::EventBudgetExhausted);
  EXPECT_GE(result.total_firings, 10);
}

}  // namespace
}  // namespace vrdf::sim
