// Tick-clock tests: TimeScale arithmetic, clock selection, the Rational
// fallback, and the bit-for-bit equivalence of the tick and exact-Rational
// simulation paths on random chains and the MP3 model.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>

#include "analysis/buffer_sizing.hpp"
#include "models/mp3.hpp"
#include "models/synthetic.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"
#include "util/time_scale.hpp"

namespace vrdf::sim {
namespace {

using dataflow::ActorId;
using dataflow::BufferEdges;
using dataflow::EdgeId;
using dataflow::RateSet;
using dataflow::VrdfGraph;

const Duration kMs = milliseconds(Rational(1));

// ---------------------------------------------------------------- TimeScale

TEST(TimeScale, BuilderTakesDenominatorLcm) {
  TimeScale::Builder builder;
  builder.fold(Rational(1, 6));
  builder.fold(Rational(3, 4));
  builder.fold(Rational(5));
  const auto scale = builder.build();
  ASSERT_TRUE(scale.has_value());
  EXPECT_EQ(scale->ticks_per_second(), 12);
}

TEST(TimeScale, ConversionsAreExact) {
  TimeScale::Builder builder;
  builder.fold(Rational(1, 44100));
  builder.fold(Rational(3, 125));
  const auto scale = builder.build();
  ASSERT_TRUE(scale.has_value());
  const Rational r(7, 125);
  ASSERT_TRUE(scale->representable(r));
  EXPECT_EQ(scale->to_rational(scale->to_ticks(r)), r);
  EXPECT_FALSE(scale->representable(Rational(1, 7919)));
}

TEST(TimeScale, BuilderOverflowsToNullopt) {
  TimeScale::Builder builder;
  builder.fold(Rational(1, TimeScale::kMaxTicksPerSecond));
  EXPECT_TRUE(builder.build().has_value());
  builder.fold(Rational(1, TimeScale::kMaxTicksPerSecond - 1));  // coprime
  EXPECT_FALSE(builder.valid());
  EXPECT_FALSE(builder.build().has_value());
}

// --------------------------------------------------------- clock selection

TEST(TickClock, SimpleModelRunsOnTicks) {
  VrdfGraph g;
  const ActorId a = g.add_actor("a", kMs);
  const ActorId b = g.add_actor("b", kMs * Rational(2));
  (void)g.add_buffer(a, b, RateSet::singleton(1), RateSet::singleton(1), 4);
  Simulator sim(g);
  sim.set_clock_mode(ClockMode::ForceTickClock);
  sim.set_default_sources(1);
  StopCondition stop;
  stop.firing_target = StopCondition::FiringTarget{b, 10};
  const RunResult result = sim.run(stop);
  EXPECT_EQ(result.reason, StopReason::ReachedFiringTarget);
  EXPECT_TRUE(sim.using_tick_clock());
  // Denominators: 1000 (1 ms) and 500 (2 ms) -> 1000 ticks/s.
  EXPECT_EQ(sim.tick_resolution(), std::optional<std::int64_t>(1000));
}

TEST(TickClock, LcmOverflowFallsBackToRational) {
  // Coprime denominators whose LCM (= 2^42 - 2^21) exceeds the 2^40 scale
  // cap while staying comfortably inside int64 for the Rational path.
  VrdfGraph g;
  const ActorId a = g.add_actor("a", seconds(Rational(1, std::int64_t{1} << 21)));
  const ActorId b =
      g.add_actor("b", seconds(Rational(1, (std::int64_t{1} << 21) - 1)));
  (void)g.add_buffer(a, b, RateSet::singleton(1), RateSet::singleton(1), 4);
  StopCondition stop;
  stop.firing_target = StopCondition::FiringTarget{b, 3};

  Simulator forced(g);
  forced.set_clock_mode(ClockMode::ForceTickClock);
  forced.set_default_sources(1);
  EXPECT_THROW((void)forced.run(stop), ContractError);

  Simulator sim(g);
  sim.set_default_sources(1);
  const RunResult result = sim.run(stop);
  EXPECT_EQ(result.reason, StopReason::ReachedFiringTarget);
  EXPECT_FALSE(sim.using_tick_clock());
}

TEST(TickClock, UnrepresentableHorizonFallsBackMidLife) {
  VrdfGraph g;
  const ActorId a = g.add_actor("a", kMs);
  const ActorId b = g.add_actor("b", kMs);
  (void)g.add_buffer(a, b, RateSet::singleton(1), RateSet::singleton(1), 4);

  const auto run_both_phases = [&](ClockMode mode) {
    Simulator sim(g);
    sim.set_clock_mode(mode);
    sim.set_default_sources(1);
    sim.record_firings(b, 1 << 12);
    StopCondition first;
    first.firing_target = StopCondition::FiringTarget{b, 5};
    (void)sim.run(first);
    if (mode == ClockMode::Auto) {
      EXPECT_TRUE(sim.using_tick_clock());
    }
    // 1/7919 s is not a whole number of ticks at 1000 ticks/s.
    StopCondition second;
    second.until_time = TimePoint(Rational(100, 7919));
    const RunResult result = sim.run(second);
    EXPECT_EQ(result.reason, StopReason::ReachedTimeLimit);
    EXPECT_FALSE(sim.using_tick_clock());
    EXPECT_EQ(sim.now().seconds(), Rational(100, 7919));
    return sim.firings(b).size();
  };

  EXPECT_EQ(run_both_phases(ClockMode::Auto),
            run_both_phases(ClockMode::ForceExactRational));
}

TEST(TickClock, OversizedConstantAtFineScaleFallsBackToRational) {
  // The denominator LCM (2^40) is in range, but the disconnected slow
  // actor's 2^25 s response time converts to 2^65 ticks: Auto must pick
  // the Rational path (whose times here keep small numerators), not throw
  // OverflowError at engine construction.
  VrdfGraph g;
  const ActorId a =
      g.add_actor("a", seconds(Rational(1, TimeScale::kMaxTicksPerSecond)));
  const ActorId b =
      g.add_actor("b", seconds(Rational(1, TimeScale::kMaxTicksPerSecond)));
  (void)g.add_buffer(a, b, RateSet::singleton(1), RateSet::singleton(1), 4);
  (void)g.add_actor("slow", seconds(Rational(std::int64_t{1} << 25)));
  Simulator sim(g);
  sim.set_default_sources(1);
  StopCondition stop;
  stop.firing_target = StopCondition::FiringTarget{a, 3};
  const RunResult result = sim.run(stop);
  EXPECT_EQ(result.reason, StopReason::ReachedFiringTarget);
  EXPECT_FALSE(sim.using_tick_clock());
}

TEST(TickClock, ConfigurationBetweenRunsUsesTheLiveEngine) {
  // Regression: config setters called after the first run must forward to
  // the engine (the staged config is consumed when the engine is built).
  VrdfGraph g;
  const ActorId a = g.add_actor("a", kMs);
  const ActorId b = g.add_actor("b", kMs);
  const BufferEdges buf =
      g.add_buffer(a, b, RateSet::singleton(1), RateSet::singleton(1), 4);
  Simulator sim(g);
  sim.set_default_sources(1);
  StopCondition first;
  first.firing_target = StopCondition::FiringTarget{b, 5};
  (void)sim.run(first);
  ASSERT_TRUE(sim.using_tick_clock());

  sim.record_transfers(buf.data);
  sim.record_firings(b);
  sim.inject_release_delay(b, 7, kMs * Rational(2));
  StopCondition second;
  second.firing_target = StopCondition::FiringTarget{b, 10};
  (void)sim.run(second);
  EXPECT_FALSE(sim.production_events(buf.data).empty());
  EXPECT_FALSE(sim.firings(b).empty());
  // Firing 7 was gated by the injected 2 ms delay.
  const auto& records = sim.firings(b);
  const auto firing7 = std::find_if(records.begin(), records.end(),
                                    [](const FiringRecord& r) {
                                      return r.index == 7;
                                    });
  ASSERT_NE(firing7, records.end());
  const auto firing6 = std::find_if(records.begin(), records.end(),
                                    [](const FiringRecord& r) {
                                      return r.index == 6;
                                    });
  ASSERT_NE(firing6, records.end());
  EXPECT_GE(firing7->start - firing6->start, kMs * Rational(2));
}

TEST(TickClock, InvalidEdgeIdInSetQuantumSourceThrows) {
  // Regression: an invalid id must not silently match the unused
  // EdgeId::invalid() half of a bare-edge port.
  VrdfGraph g;
  const ActorId a = g.add_actor("a", kMs);
  const ActorId b = g.add_actor("b", kMs);
  (void)g.add_edge(a, b, RateSet::singleton(1), RateSet::singleton(1), 4);
  Simulator sim(g);
  EXPECT_THROW(
      sim.set_quantum_source(a, EdgeId::invalid(), constant_source(1)),
      ContractError);
}

TEST(TickClock, OversizedHorizonFallsBackInsteadOfOverflowing) {
  // An until_time whose denominator divides the scale but whose tick count
  // does not fit int64 must take the Rational fallback, not throw.
  VrdfGraph g;
  const ActorId a =
      g.add_actor("a", seconds(Rational(1, TimeScale::kMaxTicksPerSecond)));
  const ActorId b =
      g.add_actor("b", seconds(Rational(1, TimeScale::kMaxTicksPerSecond)));
  (void)g.add_buffer(a, b, RateSet::singleton(1), RateSet::singleton(1), 4);
  Simulator sim(g);
  sim.set_default_sources(1);
  StopCondition first;
  first.firing_target = StopCondition::FiringTarget{b, 2};
  (void)sim.run(first);
  ASSERT_TRUE(sim.using_tick_clock());
  StopCondition stop;
  stop.until_time = TimePoint(Rational(std::int64_t{1} << 33));  // ~2^73 ticks
  stop.max_firings = 100;
  const RunResult result = sim.run(stop);
  EXPECT_FALSE(sim.using_tick_clock());
  EXPECT_EQ(result.reason, StopReason::EventBudgetExhausted);
}

// ------------------------------------------------------------- equivalence

struct RunCapture {
  std::vector<FiringRecord> firings;        // all actors, concatenated
  std::vector<EdgeMetrics> edges;
  std::vector<EdgeTransfer> productions;    // recorded edges only
  std::vector<EdgeTransfer> consumptions;
  std::vector<Starvation> starvations;
  Rational end_seconds;
  std::int64_t total_firings = 0;
  Simulator::StateSnapshot snapshot;
};

void expect_equal(const RunCapture& tick, const RunCapture& rat) {
  ASSERT_EQ(tick.firings.size(), rat.firings.size());
  for (std::size_t i = 0; i < tick.firings.size(); ++i) {
    EXPECT_EQ(tick.firings[i].actor, rat.firings[i].actor) << "firing " << i;
    EXPECT_EQ(tick.firings[i].index, rat.firings[i].index) << "firing " << i;
    EXPECT_EQ(tick.firings[i].start, rat.firings[i].start) << "firing " << i;
    EXPECT_EQ(tick.firings[i].finish, rat.firings[i].finish) << "firing " << i;
  }
  ASSERT_EQ(tick.edges.size(), rat.edges.size());
  for (std::size_t e = 0; e < tick.edges.size(); ++e) {
    EXPECT_EQ(tick.edges[e].tokens, rat.edges[e].tokens) << "edge " << e;
    EXPECT_EQ(tick.edges[e].max_tokens, rat.edges[e].max_tokens) << "edge " << e;
    EXPECT_EQ(tick.edges[e].min_tokens, rat.edges[e].min_tokens) << "edge " << e;
    EXPECT_EQ(tick.edges[e].produced_total, rat.edges[e].produced_total);
    EXPECT_EQ(tick.edges[e].consumed_total, rat.edges[e].consumed_total);
  }
  ASSERT_EQ(tick.productions.size(), rat.productions.size());
  for (std::size_t i = 0; i < tick.productions.size(); ++i) {
    EXPECT_EQ(tick.productions[i].cumulative, rat.productions[i].cumulative);
    EXPECT_EQ(tick.productions[i].count, rat.productions[i].count);
    EXPECT_EQ(tick.productions[i].time, rat.productions[i].time);
  }
  ASSERT_EQ(tick.consumptions.size(), rat.consumptions.size());
  for (std::size_t i = 0; i < tick.consumptions.size(); ++i) {
    EXPECT_EQ(tick.consumptions[i].cumulative, rat.consumptions[i].cumulative);
    EXPECT_EQ(tick.consumptions[i].count, rat.consumptions[i].count);
    EXPECT_EQ(tick.consumptions[i].time, rat.consumptions[i].time);
  }
  ASSERT_EQ(tick.starvations.size(), rat.starvations.size());
  for (std::size_t i = 0; i < tick.starvations.size(); ++i) {
    EXPECT_EQ(tick.starvations[i].actor, rat.starvations[i].actor);
    EXPECT_EQ(tick.starvations[i].firing, rat.starvations[i].firing);
    EXPECT_EQ(tick.starvations[i].scheduled, rat.starvations[i].scheduled);
    EXPECT_EQ(tick.starvations[i].actual_start, rat.starvations[i].actual_start);
  }
  EXPECT_EQ(tick.end_seconds, rat.end_seconds);
  EXPECT_EQ(tick.total_firings, rat.total_firings);
  EXPECT_EQ(tick.snapshot, rat.snapshot);
}

using Configure = std::function<void(Simulator&)>;

RunCapture run_once(const VrdfGraph& graph, ClockMode mode,
                    const Configure& configure, const StopCondition& stop,
                    const std::vector<EdgeId>& recorded_edges,
                    bool expect_ticks) {
  Simulator sim(graph);
  sim.set_clock_mode(mode);
  if (configure) {
    configure(sim);
  }
  sim.set_default_sources(7);
  for (const ActorId a : graph.actors()) {
    sim.record_firings(a);
  }
  for (const EdgeId e : recorded_edges) {
    sim.record_transfers(e);
  }
  const RunResult result = sim.run(stop);
  if (mode == ClockMode::Auto) {
    EXPECT_EQ(sim.using_tick_clock(), expect_ticks);
  }
  RunCapture cap;
  for (const ActorId a : graph.actors()) {
    const auto& f = sim.firings(a);
    cap.firings.insert(cap.firings.end(), f.begin(), f.end());
  }
  for (const EdgeId e : graph.edges()) {
    cap.edges.push_back(sim.edge_metrics(e));
  }
  for (const EdgeId e : recorded_edges) {
    const auto& p = sim.production_events(e);
    const auto& c = sim.consumption_events(e);
    cap.productions.insert(cap.productions.end(), p.begin(), p.end());
    cap.consumptions.insert(cap.consumptions.end(), c.begin(), c.end());
  }
  cap.starvations = result.starvations;
  cap.end_seconds = result.end_time.seconds();
  cap.total_firings = result.total_firings;
  cap.snapshot = sim.snapshot();
  return cap;
}

void expect_paths_equivalent(const VrdfGraph& graph, const Configure& configure,
                             const StopCondition& stop,
                             const std::vector<EdgeId>& recorded_edges = {},
                             bool expect_ticks = true) {
  const RunCapture tick = run_once(graph, ClockMode::Auto, configure, stop,
                                   recorded_edges, expect_ticks);
  const RunCapture rat = run_once(graph, ClockMode::ForceExactRational,
                                  configure, stop, recorded_edges, expect_ticks);
  expect_equal(tick, rat);
}

TEST(TickRationalEquivalence, RandomChains) {
  for (const std::uint64_t seed : {1, 2, 3, 4, 5}) {
    models::RandomChainSpec spec;
    spec.seed = seed;
    spec.length = 6;
    spec.variable_percent = 60;
    spec.zero_percent = 20;
    const models::SyntheticChain chain = models::make_random_chain(spec);
    const analysis::GraphAnalysis sized =
        analysis::compute_buffer_capacities(chain.graph, chain.constraint);
    ASSERT_TRUE(sized.admissible) << "seed " << seed;
    dataflow::VrdfGraph graph = chain.graph;
    analysis::apply_capacities(graph, sized);
    StopCondition stop;
    stop.firing_target =
        StopCondition::FiringTarget{chain.constraint.actor, 300};
    expect_paths_equivalent(graph, {}, stop);
  }
}

TEST(TickRationalEquivalence, RandomChainWithJitterAndDelays) {
  models::RandomChainSpec spec;
  spec.seed = 11;
  spec.length = 5;
  spec.variable_percent = 50;
  const models::SyntheticChain chain = models::make_random_chain(spec);
  const analysis::GraphAnalysis sized =
      analysis::compute_buffer_capacities(chain.graph, chain.constraint);
  ASSERT_TRUE(sized.admissible);
  dataflow::VrdfGraph graph = chain.graph;
  analysis::apply_capacities(graph, sized);
  const std::vector<ActorId> actors = graph.actors();
  const Configure configure = [&](Simulator& sim) {
    sim.set_response_time_jitter(actors[1], 99, Rational(1, 3));
    sim.set_response_time_jitter(actors[3], 17, Rational(7, 10));
    sim.inject_release_delay(actors[2], 4, microseconds(Rational(13, 3)));
  };
  StopCondition stop;
  stop.firing_target = StopCondition::FiringTarget{chain.constraint.actor, 250};
  expect_paths_equivalent(graph, configure, stop);
}

TEST(TickRationalEquivalence, Mp3ModelWithJitterReleaseDelayAndRecords) {
  models::Mp3Playback app = models::make_mp3_playback();
  const analysis::GraphAnalysis sized =
      analysis::compute_buffer_capacities(app.graph, app.constraint);
  ASSERT_TRUE(sized.admissible);
  analysis::apply_capacities(app.graph, sized);
  const Configure configure = [&](Simulator& sim) {
    sim.set_response_time_jitter(app.mp3, 5, Rational(1, 2));
    sim.inject_release_delay(app.src, 3, milliseconds(Rational(1, 7)));
  };
  StopCondition stop;
  stop.firing_target = StopCondition::FiringTarget{app.dac, 5000};
  expect_paths_equivalent(app.graph, configure, stop,
                          {app.b2.data, app.b3.data});
}

TEST(TickRationalEquivalence, RandomForkJoinGraphs) {
  for (const std::uint64_t seed : {1, 2, 3, 4, 5}) {
    models::RandomForkJoinSpec spec;
    spec.seed = seed;
    spec.stages = 1 + seed % 2;
    spec.max_branches = 3;
    spec.max_segment_length = seed % 3;
    spec.variable_percent = 60;
    spec.zero_percent = 20;
    const models::SyntheticChain model = models::make_random_fork_join(spec);
    const analysis::GraphAnalysis sized =
        analysis::compute_buffer_capacities(model.graph, model.constraint);
    ASSERT_TRUE(sized.admissible) << "seed " << seed;
    ASSERT_FALSE(sized.is_chain) << "seed " << seed;
    dataflow::VrdfGraph graph = model.graph;
    analysis::apply_capacities(graph, sized);
    StopCondition stop;
    stop.firing_target =
        StopCondition::FiringTarget{model.constraint.actor, 300};
    expect_paths_equivalent(graph, {}, stop);
  }
}

TEST(TickRationalEquivalence, AvPipelineWithJitterAndDelays) {
  models::AvSyncPipeline app = models::make_av_sync_pipeline();
  const analysis::GraphAnalysis sized =
      analysis::compute_buffer_capacities(app.graph, app.constraint);
  ASSERT_TRUE(sized.admissible);
  analysis::apply_capacities(app.graph, sized);
  const Configure configure = [&](Simulator& sim) {
    sim.set_response_time_jitter(app.vdec, 23, Rational(2, 5));
    sim.set_response_time_jitter(app.adec, 5, Rational(1, 2));
    sim.inject_release_delay(app.demux, 9, milliseconds(Rational(3, 7)));
  };
  StopCondition stop;
  stop.firing_target = StopCondition::FiringTarget{app.present, 1000};
  expect_paths_equivalent(app.graph, configure, stop,
                          {app.demux_adec.data, app.vdec_sync.data});
}

TEST(TickRationalEquivalence, PeriodicAndRateLimitedModes) {
  VrdfGraph g;
  const ActorId a = g.add_actor("a", kMs);
  const ActorId b = g.add_actor("b", kMs);
  const ActorId c = g.add_actor("c", kMs * Rational(1, 2));
  (void)g.add_buffer(a, b, RateSet::singleton(1), RateSet::singleton(1), 4);
  (void)g.add_buffer(b, c, RateSet::singleton(1), RateSet::singleton(1), 4);
  const Configure configure = [&](Simulator& sim) {
    // Offset 0 starves firing 0 of b; the rate limit gates c.
    sim.set_actor_mode(b, ActorMode::strictly_periodic(TimePoint(),
                                                       kMs * Rational(2)));
    sim.set_actor_mode(c, ActorMode::rate_limited(kMs * Rational(3)));
  };
  StopCondition stop;
  stop.firing_target = StopCondition::FiringTarget{c, 20};
  expect_paths_equivalent(g, configure, stop);
}

TEST(TickRationalEquivalence, TimeLimitedRun) {
  VrdfGraph g;
  const ActorId a = g.add_actor("a", kMs);
  const ActorId b = g.add_actor("b", kMs * Rational(3, 7));
  (void)g.add_buffer(a, b, RateSet::singleton(2), RateSet::of({1, 2}), 8);
  StopCondition stop;
  stop.until_time = TimePoint(Rational(1, 10));
  expect_paths_equivalent(g, {}, stop);
}

}  // namespace
}  // namespace vrdf::sim
