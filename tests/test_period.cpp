// Tests for the inverse analysis: fastest admissible period for given
// capacities.
#include <gtest/gtest.h>

#include "analysis/buffer_sizing.hpp"
#include "analysis/period.hpp"
#include "models/fig1.hpp"
#include "models/mp3.hpp"
#include "models/synthetic.hpp"
#include "sim/verify.hpp"

namespace vrdf::analysis {
namespace {

TEST(MinPeriod, Mp3RoundTripIsExact) {
  // Capacities computed at 1/44100 s with tight response times: the
  // fastest admissible period is exactly 1/44100 s (the response-time
  // constraints bind — the paper chose ρ(v) = φ(v)).
  models::Mp3Playback app = models::make_mp3_playback();
  const GraphAnalysis sized =
      compute_buffer_capacities(app.graph, app.constraint);
  apply_capacities(app.graph, sized);
  const MinPeriodResult inverse = min_admissible_period(app.graph, app.dac);
  ASSERT_TRUE(inverse.ok) << (inverse.diagnostics.empty()
                                  ? ""
                                  : inverse.diagnostics[0]);
  EXPECT_EQ(inverse.min_period, period_of_hz(Rational(44100)));
  // x is integral on every pair here, so infimum and minimum coincide and
  // the bound is attained (response times bind).
  EXPECT_EQ(inverse.infimum_period, inverse.min_period);
  EXPECT_TRUE(inverse.infimum_attained);
}

TEST(MinPeriod, CapacityBoundWhenResponseTimesHaveSlack) {
  // Halved response times: capacities sized for τ become the binding
  // constraint at some faster rate; the round trip must be consistent.
  const Duration tau = milliseconds(Rational(3));
  models::Fig1Vrdf model =
      models::make_fig1_vrdf(tau, tau / Rational(2), tau / Rational(2));
  const GraphAnalysis sized =
      compute_buffer_capacities(model.graph, model.constraint);
  ASSERT_TRUE(sized.admissible);
  apply_capacities(model.graph, sized);

  const MinPeriodResult inverse =
      min_admissible_period(model.graph, model.vb);
  ASSERT_TRUE(inverse.ok);
  EXPECT_LE(inverse.min_period, tau);

  // At the reported minimum the same capacities must still be admissible
  // and sufficient per the forward analysis...
  const GraphAnalysis at_min = compute_buffer_capacities(
      model.graph, ThroughputConstraint{model.vb, inverse.min_period});
  ASSERT_TRUE(at_min.admissible);
  for (std::size_t i = 0; i < at_min.pairs.size(); ++i) {
    EXPECT_LE(at_min.pairs[i].capacity,
              model.graph.edge(at_min.pairs[i].buffer.space).initial_tokens);
  }
  // ...and 1% faster must violate the (attained) sufficiency criterion
  // x ≤ d − 1 the inverse analysis uses — the closed form is conservative
  // by design: the literal forward rounding accepts x < d, an open
  // condition with no attained minimum period.
  const Duration faster = inverse.min_period * Rational(99, 100);
  const GraphAnalysis too_fast = compute_buffer_capacities(
      model.graph, ThroughputConstraint{model.vb, faster});
  bool violated = !too_fast.admissible;
  if (!violated) {
    for (std::size_t i = 0; i < too_fast.pairs.size(); ++i) {
      const std::int64_t installed =
          model.graph.edge(too_fast.pairs[i].buffer.space).initial_tokens;
      violated =
          violated || too_fast.pairs[i].raw_tokens > Rational(installed - 1);
    }
  }
  EXPECT_TRUE(violated);
}

TEST(MinPeriod, VerifiedBySimulationAtTheMinimum) {
  const Duration tau = milliseconds(Rational(3));
  models::Fig1Vrdf model =
      models::make_fig1_vrdf(tau, tau / Rational(2), tau / Rational(2));
  const GraphAnalysis sized =
      compute_buffer_capacities(model.graph, model.constraint);
  apply_capacities(model.graph, sized);
  const MinPeriodResult inverse =
      min_admissible_period(model.graph, model.vb);
  ASSERT_TRUE(inverse.ok);

  sim::VerifyOptions options;
  options.observe_firings = 3000;
  const sim::VerifyResult verdict = sim::verify_throughput(
      model.graph,
      ThroughputConstraint{model.vb, inverse.min_period}, {}, options);
  EXPECT_TRUE(verdict.ok) << verdict.detail;
}

TEST(MinPeriod, SourceConstrainedRoundTrip) {
  models::SyntheticChain chain = models::make_sensor_acquisition();
  const GraphAnalysis sized =
      compute_buffer_capacities(chain.graph, chain.constraint);
  ASSERT_TRUE(sized.admissible);
  apply_capacities(chain.graph, sized);
  const MinPeriodResult inverse =
      min_admissible_period(chain.graph, chain.constraint.actor);
  ASSERT_TRUE(inverse.ok);
  EXPECT_LE(inverse.infimum_period, chain.constraint.period);
}

TEST(MinPeriod, UndersizedBufferCannotSustainAnyRate) {
  const Duration tau = milliseconds(Rational(3));
  models::Fig1Vrdf model = models::make_fig1_vrdf(tau, tau, tau);
  // π̂ + γ̂ − 1 = 5 is the structural floor for the +1 form.
  model.graph.set_initial_tokens(model.buffer.space, 5);
  const MinPeriodResult inverse =
      min_admissible_period(model.graph, model.vb);
  EXPECT_FALSE(inverse.ok);
  ASSERT_FALSE(inverse.diagnostics.empty());
  EXPECT_NE(inverse.diagnostics[0].find("cannot sustain any rate"),
            std::string::npos);
}

TEST(MinPeriod, LargerCapacityNeverSlowsTheMinimum) {
  const Duration tau = milliseconds(Rational(3));
  Duration previous = seconds(Rational(1000));
  for (const std::int64_t capacity : {6LL, 8LL, 11LL, 20LL, 100LL}) {
    models::Fig1Vrdf model =
        models::make_fig1_vrdf(tau, tau / Rational(4), tau / Rational(4));
    model.graph.set_initial_tokens(model.buffer.space, capacity);
    const MinPeriodResult inverse =
        min_admissible_period(model.graph, model.vb);
    ASSERT_TRUE(inverse.ok) << "capacity " << capacity;
    EXPECT_LE(inverse.min_period, previous);
    previous = inverse.min_period;
  }
}

TEST(MinPeriod, ReportsBindingConstraint) {
  models::Mp3Playback app = models::make_mp3_playback();
  const GraphAnalysis sized =
      compute_buffer_capacities(app.graph, app.constraint);
  apply_capacities(app.graph, sized);
  const MinPeriodResult inverse = min_admissible_period(app.graph, app.dac);
  ASSERT_TRUE(inverse.ok);
  // With ρ(v) = φ(v) every actor binds; the reported one must be an actor.
  EXPECT_EQ(inverse.binding_constraint.rfind("actor ", 0), 0u);
}

class MinPeriodRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MinPeriodRoundTrip, ForwardThenInverseIsConsistentOnRandomChains) {
  models::RandomChainSpec spec;
  spec.seed = GetParam();
  spec.length = 3 + spec.seed % 4;
  spec.response_fraction = Rational(1, 2);
  models::SyntheticChain chain = models::make_random_chain(spec);
  const GraphAnalysis sized =
      compute_buffer_capacities(chain.graph, chain.constraint);
  ASSERT_TRUE(sized.admissible);
  apply_capacities(chain.graph, sized);

  const MinPeriodResult inverse =
      min_admissible_period(chain.graph, chain.constraint.actor);
  ASSERT_TRUE(inverse.ok) << (inverse.diagnostics.empty()
                                  ? ""
                                  : inverse.diagnostics[0]);
  // The sizing period is feasible, so it is at least the infimum; the
  // attained min_period may exceed it by less than one token's rate when
  // x is non-integral at the binding pair.
  EXPECT_LE(inverse.infimum_period, chain.constraint.period);
  EXPECT_LE(inverse.infimum_period, inverse.min_period);
  // The forward analysis at the (attained, conservative) minimum must fit
  // within the installed capacities.
  const GraphAnalysis at_min = compute_buffer_capacities(
      chain.graph,
      ThroughputConstraint{chain.constraint.actor, inverse.min_period});
  ASSERT_TRUE(at_min.admissible);
  for (const auto& pair : at_min.pairs) {
    EXPECT_LE(pair.capacity,
              chain.graph.edge(pair.buffer.space).initial_tokens);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinPeriodRoundTrip,
                         ::testing::Values(2u, 3u, 5u, 7u, 11u, 13u, 17u, 19u));

}  // namespace
}  // namespace vrdf::analysis
