// Fork-join generalisation tests: DAG validation and pacing, the
// schedule-alignment capacity terms, end-to-end sufficiency on random
// fork-join graphs (analysis vs two-phase simulation), and bit-for-bit
// chain-regression identity of the refactored GraphAnalysis against a
// reference implementation of the pre-refactor chain-indexed algorithm
// (including the paper's MP3 numbers {6015, 3263, 882}).
#include <gtest/gtest.h>

#include "analysis/buffer_sizing.hpp"
#include "analysis/pacing.hpp"
#include "analysis/period.hpp"
#include "baseline/traditional.hpp"
#include "dataflow/validation.hpp"
#include "io/dot.hpp"
#include "io/report.hpp"
#include "models/fig1.hpp"
#include "models/mp3.hpp"
#include "models/synthetic.hpp"
#include "sim/fleet.hpp"
#include "sim/verify.hpp"
#include "util/checked_int.hpp"
#include "util/error.hpp"

namespace vrdf::analysis {
namespace {

using dataflow::ActorId;
using dataflow::BufferEdges;
using dataflow::RateSet;
using dataflow::VrdfGraph;

const Duration kTau = milliseconds(Rational(3));

// ------------------------------------------------------------- DAG pacing

// A diamond with gear-matched demands: a feeds b (gear 2) and c (gear 3),
// both feed d (gear 1); every edge pins π̌ = g(source), γ̂ = g(target).
VrdfGraph make_diamond(ActorId* out_a = nullptr, ActorId* out_d = nullptr) {
  VrdfGraph g;
  const Duration dummy = seconds(Rational(1));
  const ActorId a = g.add_actor("a", dummy);
  const ActorId b = g.add_actor("b", dummy);
  const ActorId c = g.add_actor("c", dummy);
  const ActorId d = g.add_actor("d", dummy);
  (void)g.add_buffer(a, b, RateSet::singleton(4), RateSet::singleton(2));
  (void)g.add_buffer(a, c, RateSet::singleton(4), RateSet::singleton(3));
  (void)g.add_buffer(b, d, RateSet::singleton(2), RateSet::singleton(1));
  (void)g.add_buffer(c, d, RateSet::singleton(3), RateSet::singleton(1));
  if (out_a != nullptr) {
    *out_a = a;
  }
  if (out_d != nullptr) {
    *out_d = d;
  }
  return g;
}

TEST(DagPacing, DiamondPropagatesPerEdge) {
  ActorId a, d;
  const VrdfGraph g = make_diamond(&a, &d);
  const PacingResult pacing =
      compute_pacing(g, ThroughputConstraint{d, kTau});
  ASSERT_TRUE(pacing.ok) << pacing.diagnostics[0];
  EXPECT_EQ(pacing.side, ConstraintSide::Sink);
  EXPECT_FALSE(pacing.is_chain);
  // φ(v) = g(v)·τ under the gear scheme: φ(b) = 2τ, φ(c) = 3τ and the
  // fork actor takes the min over its two (equal) demands: φ(a) = 4τ.
  const ActorId b = *g.find_actor("b");
  const ActorId c = *g.find_actor("c");
  EXPECT_EQ(pacing.pacing_of(d), kTau);
  EXPECT_EQ(pacing.pacing_of(b), kTau * Rational(2));
  EXPECT_EQ(pacing.pacing_of(c), kTau * Rational(3));
  EXPECT_EQ(pacing.pacing_of(a), kTau * Rational(4));
}

TEST(DagPacing, RejectsConflictingForkDemands) {
  // Mismatched demands: branch via b demands 2τ of a, branch via c
  // demands τ/2.  With static rates this is rate inconsistency around the
  // reconvergent cycle — the realized flows of the two branches diverge,
  // so no finite capacities exist and the analysis must say so instead of
  // silently taking the min (which used to deadlock the simulator).
  VrdfGraph g;
  const Duration dummy = seconds(Rational(1));
  const ActorId a = g.add_actor("a", dummy);
  const ActorId b = g.add_actor("b", dummy);
  const ActorId c = g.add_actor("c", dummy);
  const ActorId d = g.add_actor("d", dummy);
  (void)g.add_buffer(a, b, RateSet::singleton(2), RateSet::singleton(1));
  (void)g.add_buffer(a, c, RateSet::singleton(1), RateSet::singleton(2));
  (void)g.add_buffer(b, d, RateSet::singleton(1), RateSet::singleton(1));
  (void)g.add_buffer(c, d, RateSet::singleton(1), RateSet::singleton(1));
  const PacingResult pacing =
      compute_pacing(g, ThroughputConstraint{d, kTau});
  ASSERT_FALSE(pacing.ok);
  EXPECT_NE(pacing.diagnostics[0].find("conflicting pacing demands"),
            std::string::npos);
  const GraphAnalysis analysis =
      compute_buffer_capacities(g, ThroughputConstraint{d, kTau});
  EXPECT_FALSE(analysis.admissible);
}

TEST(DagPacing, RejectsFlowInconsistentDiamond) {
  // Unit rates everywhere except c→d producing 2 per firing: branch c
  // delivers twice branch b's flow to the join.  validate_dag_model is
  // happy structurally, but pacing must reject (demand via b: τ, via c:
  // 2τ) — previously this returned admissible capacities under which the
  // self-timed simulation deadlocked.
  VrdfGraph g;
  const Duration dummy = seconds(Rational(1));
  const ActorId a = g.add_actor("a", dummy);
  const ActorId b = g.add_actor("b", dummy);
  const ActorId c = g.add_actor("c", dummy);
  const ActorId d = g.add_actor("d", dummy);
  (void)g.add_buffer(a, b, RateSet::singleton(1), RateSet::singleton(1));
  (void)g.add_buffer(a, c, RateSet::singleton(1), RateSet::singleton(1));
  (void)g.add_buffer(b, d, RateSet::singleton(1), RateSet::singleton(1));
  (void)g.add_buffer(c, d, RateSet::singleton(2), RateSet::singleton(1));
  EXPECT_TRUE(dataflow::validate_dag_model(g).ok());
  const PacingResult pacing = compute_pacing(g, ThroughputConstraint{d, kTau});
  ASSERT_FALSE(pacing.ok);
  EXPECT_NE(pacing.diagnostics[0].find("inconsistent rates"),
            std::string::npos);
}

TEST(DagPacing, RejectsVariableRatesOnReconvergentEdges) {
  // A variable consumption set inside the diamond lets the sibling
  // branches' realized flows diverge; only chain-segment (bridge) edges
  // may carry data-dependent rates.
  ActorId a, d;
  VrdfGraph g = make_diamond(&a, &d);
  const ActorId e = g.add_actor("e", seconds(Rational(1)));
  // d → e is a bridge: variability is fine there.
  (void)g.add_buffer(d, e, RateSet::singleton(1), RateSet::of({0, 1}));
  ASSERT_TRUE(compute_pacing(g, ThroughputConstraint{e, kTau}).ok);
  // ...but on the diamond edge b → d it must be rejected.
  VrdfGraph h;
  const Duration dummy = seconds(Rational(1));
  const ActorId ha = h.add_actor("a", dummy);
  const ActorId hb = h.add_actor("b", dummy);
  const ActorId hc = h.add_actor("c", dummy);
  const ActorId hd = h.add_actor("d", dummy);
  (void)h.add_buffer(ha, hb, RateSet::singleton(1), RateSet::singleton(1));
  (void)h.add_buffer(ha, hc, RateSet::singleton(1), RateSet::singleton(1));
  (void)h.add_buffer(hb, hd, RateSet::of({1, 2}), RateSet::singleton(1));
  (void)h.add_buffer(hc, hd, RateSet::singleton(1), RateSet::singleton(1));
  const PacingResult pacing = compute_pacing(h, ThroughputConstraint{hd, kTau});
  ASSERT_FALSE(pacing.ok);
  EXPECT_NE(pacing.diagnostics[0].find("reconvergent fork-join path"),
            std::string::npos);
}

TEST(DagPacing, InteriorPinOnDiamondBranchLeavesSiblingUnpaced) {
  // PR 5 admits interior pins, so pinning branch actor b is no longer an
  // "is interior" rejection — but its sibling branch c neither reaches
  // the pin nor hangs off it, so the coverage check still rejects,
  // naming the unpaced actor instead.
  ActorId a, d;
  const VrdfGraph g = make_diamond(&a, &d);
  const PacingResult pacing = compute_pacing(
      g, ThroughputConstraint{*g.find_actor("b"), kTau});
  EXPECT_FALSE(pacing.ok);
  ASSERT_FALSE(pacing.diagnostics.empty());
  EXPECT_EQ(pacing.diagnostics[0].find("interior"), std::string::npos)
      << pacing.diagnostics[0];
  EXPECT_NE(pacing.diagnostics[0].find("actor 'c'"), std::string::npos)
      << pacing.diagnostics[0];
  EXPECT_NE(pacing.diagnostics[0].find("no pacing demand"), std::string::npos);
}

TEST(DagPacing, RejectsSecondSinkInSinkMode) {
  // a → b, a → c: constraining b leaves c unpaced.
  VrdfGraph g;
  const Duration dummy = seconds(Rational(1));
  const ActorId a = g.add_actor("a", dummy);
  const ActorId b = g.add_actor("b", dummy);
  const ActorId c = g.add_actor("c", dummy);
  (void)g.add_buffer(a, b, RateSet::singleton(1), RateSet::singleton(1));
  (void)g.add_buffer(a, c, RateSet::singleton(1), RateSet::singleton(1));
  const PacingResult pacing = compute_pacing(g, ThroughputConstraint{b, kTau});
  EXPECT_FALSE(pacing.ok);
  EXPECT_NE(pacing.diagnostics[0].find("unique data sink"), std::string::npos);
}

TEST(DagPacing, RejectsSecondSourceInSourceMode) {
  VrdfGraph g;
  const Duration dummy = seconds(Rational(1));
  const ActorId a = g.add_actor("a", dummy);
  const ActorId b = g.add_actor("b", dummy);
  const ActorId c = g.add_actor("c", dummy);
  (void)g.add_buffer(a, c, RateSet::singleton(1), RateSet::singleton(1));
  (void)g.add_buffer(b, c, RateSet::singleton(1), RateSet::singleton(1));
  const PacingResult pacing = compute_pacing(g, ThroughputConstraint{a, kTau});
  EXPECT_FALSE(pacing.ok);
  EXPECT_NE(pacing.diagnostics[0].find("unique data source"),
            std::string::npos);
}

TEST(DagPacing, SecondSourceInSinkModeIsFine) {
  // Two sources joining into the constrained sink — a plain join.
  VrdfGraph g;
  const Duration dummy = seconds(Rational(1));
  const ActorId a = g.add_actor("a", dummy);
  const ActorId b = g.add_actor("b", dummy);
  const ActorId c = g.add_actor("c", dummy);
  (void)g.add_buffer(a, c, RateSet::singleton(1), RateSet::singleton(1));
  (void)g.add_buffer(b, c, RateSet::singleton(1), RateSet::singleton(1));
  const PacingResult pacing = compute_pacing(g, ThroughputConstraint{c, kTau});
  ASSERT_TRUE(pacing.ok);
  EXPECT_EQ(pacing.pacing_of(a), kTau);
  EXPECT_EQ(pacing.pacing_of(b), kTau);
}

// -------------------------------------------------- alignment capacities

TEST(AlignmentCapacity, AvPipelineChargesSiblingSlackToFasterBranch) {
  const models::AvSyncPipeline app = models::make_av_sync_pipeline();
  const GraphAnalysis sized =
      compute_buffer_capacities(app.graph, app.constraint);
  ASSERT_TRUE(sized.admissible);
  EXPECT_FALSE(sized.is_chain);
  ASSERT_EQ(sized.pairs.size(), 6u);
  const auto capacity_of = [&](const BufferEdges& b) -> std::int64_t {
    for (const PairAnalysis& pair : sized.pairs) {
      if (pair.buffer.data == b.data) {
        return pair.capacity;
      }
    }
    ADD_FAILURE() << "buffer not analysed";
    return -1;
  };
  // Gears 4/2/3/8/1/1, τ = 40 ms, tight response times.  The video branch
  // (vdec, ρ = 8τ, bursts of 8) dominates the alignment: the demux fires
  // pinned to it, so the *audio* buffer absorbs the video branch's slack
  // (19 instead of the chain-local 9).  Hand-computed from
  // ω(demux) − ω(adec) = 13τ: x = (13τ + 3τ + 2τ)/τ = 18 → 19.
  EXPECT_EQ(capacity_of(app.src_demux), 11);
  EXPECT_EQ(capacity_of(app.demux_adec), 19);
  EXPECT_EQ(capacity_of(app.demux_vdec), 19);
  EXPECT_EQ(capacity_of(app.adec_sync), 7);
  EXPECT_EQ(capacity_of(app.vdec_sync), 17);
  EXPECT_EQ(capacity_of(app.sync_present), 3);
  EXPECT_EQ(sized.total_capacity, 76);
}

TEST(AlignmentCapacity, AvPipelineEndToEnd) {
  models::AvSyncPipeline app = models::make_av_sync_pipeline();
  const GraphAnalysis sized =
      compute_buffer_capacities(app.graph, app.constraint);
  ASSERT_TRUE(sized.admissible);
  apply_capacities(app.graph, sized);
  const sim::VerifyResult verdict =
      sim::verify_throughput(app.graph, app.constraint);
  EXPECT_TRUE(verdict.ok) << verdict.detail;
  EXPECT_EQ(verdict.starvation_count, 0);

  // The inverse problem agrees: with tight response times the fastest
  // admissible period is the constraint's own period.
  const MinPeriodResult headroom =
      min_admissible_period(app.graph, app.constraint.actor);
  ASSERT_TRUE(headroom.ok) << (headroom.diagnostics.empty()
                                   ? ""
                                   : headroom.diagnostics[0]);
  EXPECT_EQ(headroom.min_period, app.constraint.period);

  // Reporting stack handles the fork-join shape.
  const std::string report =
      io::analysis_report(app.graph, app.constraint, sized);
  EXPECT_NE(report.find("fork-join graph"), std::string::npos);
  const baseline::TraditionalResult traditional =
      baseline::traditional_capacities(app.graph);
  ASSERT_TRUE(traditional.ok);
  EXPECT_EQ(traditional.pairs.size(), 6u);
}

TEST(AlignmentCapacity, DotRendersCapacitiesAndPeriod) {
  models::AvSyncPipeline app = models::make_av_sync_pipeline();
  const GraphAnalysis sized =
      compute_buffer_capacities(app.graph, app.constraint);
  ASSERT_TRUE(sized.admissible);
  apply_capacities(app.graph, sized);
  const std::string dot = io::to_dot(app.graph, app.constraint, sized);
  EXPECT_NE(dot.find("zeta=19"), std::string::npos);
  EXPECT_NE(dot.find("tau=1/25 s"), std::string::npos);
  EXPECT_NE(dot.find("peripheries=2"), std::string::npos);
  EXPECT_EQ(dot.find("(!)"), std::string::npos);  // installed == computed
  app.graph.set_initial_tokens(app.adec_sync.space, 1);
  const std::string stale = io::to_dot(app.graph, app.constraint, sized);
  EXPECT_NE(stale.find("(!)"), std::string::npos);
}

// ------------------------------------------- sufficiency on random DAGs

// The published per-seed shape schedule of the PR 2 sweep — kept as the
// fleet's custom generator so seed N still yields the same graph.
models::SyntheticChain make_sweep_fork_join(std::uint64_t seed,
                                            bool source_constrained) {
  models::RandomForkJoinSpec spec;
  spec.seed = seed;
  spec.stages = 1 + seed % 3;
  spec.max_branches = 2 + seed % 2;
  spec.max_branch_length = 1 + seed % 3;
  spec.max_segment_length = seed % 3;
  spec.variable_percent = 60;
  spec.zero_percent = 25;
  spec.source_constrained = source_constrained;
  return models::make_random_fork_join(spec);
}

TEST(ForkJoinSufficiency, RandomGraphsSustainPeriodicExecution) {
  // The tentpole acceptance check, through the fleet harness (PR 8): on
  // 50 random fork-join graphs per constraint placement — up from 30 —
  // the computed capacities survive the two-phase simulation check with
  // not a single starved activation.
  sim::SweepSpec spec;
  spec.classes = {models::ModelClass::ForkJoin};
  spec.seeds_per_class = 50;
  spec.modes = {sim::ConstraintMode::Sink, sim::ConstraintMode::Source};
  spec.observe_firings = 400;
  spec.generator = [](const sim::FleetItem& item) {
    models::SyntheticChain generated = make_sweep_fork_join(
        item.seed_ordinal, item.mode == sim::ConstraintMode::Source);
    models::SyntheticModel model;
    model.graph = std::move(generated.graph);
    model.constraints = {generated.constraint};
    return model;
  };
  const sim::FleetReport report = sim::FleetSweep(spec).run(4);
  EXPECT_EQ(report.total_items, 100);
  EXPECT_EQ(report.passed, report.total_items) << sim::canonical_text(report);
  EXPECT_EQ(report.failed + report.rejected, 0);
  EXPECT_EQ(report.starvations, 0);

  // The structural claim the old loop also made: the generated graphs
  // really leave chain-land (the fleet only checks the verdicts).
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const models::SyntheticChain model = make_sweep_fork_join(seed, false);
    const GraphAnalysis sized =
        compute_buffer_capacities(model.graph, model.constraint);
    ASSERT_TRUE(sized.admissible)
        << "seed " << seed << ": " << sized.diagnostics[0];
    EXPECT_FALSE(sized.is_chain) << "seed " << seed;
  }
}

// --------------------------------------------- chain-regression identity

// Reference implementation of the pre-refactor chain-indexed pipeline
// (PR 1 state): pacing via the positional recurrences of Sec 4.3/4.4 and
// capacities via the chain-local Eq (1)-(4).  The refactored per-edge
// GraphAnalysis must reproduce it bit-for-bit on every chain.
struct ReferenceChainAnalysis {
  bool admissible = false;
  ConstraintSide side = ConstraintSide::Sink;
  std::vector<ActorId> actors_in_order;
  std::vector<Duration> pacing;
  std::vector<Rational> raw_tokens;
  std::vector<Duration> delta_producer;
  std::vector<Duration> delta_consumer;
  std::vector<std::int64_t> capacities;
  std::int64_t total_capacity = 0;
};

ReferenceChainAnalysis reference_chain_analysis(
    const VrdfGraph& graph, const ThroughputConstraint& constraint) {
  ReferenceChainAnalysis ref;
  const auto chain = graph.chain_view();
  VRDF_REQUIRE(chain.has_value(), "reference needs a chain");
  ref.actors_in_order = chain->actors;
  const std::size_t n = chain->actors.size();
  ref.side = constraint.actor == chain->actors.back() ? ConstraintSide::Sink
                                                      : ConstraintSide::Source;
  if (n == 1) {
    ref.side = ConstraintSide::Sink;
  }
  ref.pacing.assign(n, Duration());
  if (ref.side == ConstraintSide::Sink) {
    ref.pacing[n - 1] = constraint.period;
    for (std::size_t i = n - 1; i > 0; --i) {
      const dataflow::Edge& data = graph.edge(chain->buffers[i - 1].data);
      if (data.production.min() == 0) {
        return ref;
      }
      ref.pacing[i - 1] = ref.pacing[i] * Rational(data.production.min(),
                                                   data.consumption.max());
    }
  } else {
    ref.pacing[0] = constraint.period;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      const dataflow::Edge& data = graph.edge(chain->buffers[i].data);
      if (data.consumption.min() == 0) {
        return ref;
      }
      ref.pacing[i + 1] = ref.pacing[i] * Rational(data.consumption.min(),
                                                   data.production.max());
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (graph.actor(chain->actors[i]).response_time > ref.pacing[i]) {
      return ref;
    }
  }
  for (std::size_t i = 0; i < chain->buffers.size(); ++i) {
    const dataflow::Edge& data = graph.edge(chain->buffers[i].data);
    const std::int64_t pi_max = data.production.max();
    const std::int64_t gamma_max = data.consumption.max();
    const Duration basis =
        ref.side == ConstraintSide::Sink ? ref.pacing[i + 1] : ref.pacing[i];
    const Duration s = ref.side == ConstraintSide::Sink
                           ? basis / Rational(gamma_max)
                           : basis / Rational(pi_max);
    const Duration dp = graph.actor(data.source).response_time +
                        s * Rational(pi_max - 1);
    const Duration dc = graph.actor(data.target).response_time +
                        s * Rational(gamma_max - 1);
    const Rational x = (dp + dc) / s;
    const bool is_static =
        data.production.is_singleton() && data.consumption.is_singleton();
    const bool adjacent = ref.side == ConstraintSide::Sink
                              ? i + 1 == chain->buffers.size()
                              : i == 0;
    const std::int64_t capacity = is_static && adjacent
                                      ? x.ceil()
                                      : checked_add(x.floor(), 1);
    ref.raw_tokens.push_back(x);
    ref.delta_producer.push_back(dp);
    ref.delta_consumer.push_back(dc);
    ref.capacities.push_back(capacity);
    ref.total_capacity = checked_add(ref.total_capacity, capacity);
  }
  ref.admissible = true;
  return ref;
}

void expect_matches_reference(const VrdfGraph& graph,
                              const ThroughputConstraint& constraint,
                              const std::string& label) {
  const ReferenceChainAnalysis ref =
      reference_chain_analysis(graph, constraint);
  const GraphAnalysis analysis = compute_buffer_capacities(graph, constraint);
  ASSERT_EQ(analysis.admissible, ref.admissible) << label;
  EXPECT_TRUE(analysis.is_chain) << label;
  EXPECT_EQ(analysis.actors_in_order, ref.actors_in_order) << label;
  if (!ref.admissible) {
    return;
  }
  EXPECT_EQ(analysis.side, ref.side) << label;
  ASSERT_EQ(analysis.pacing.size(), ref.pacing.size()) << label;
  for (std::size_t i = 0; i < ref.pacing.size(); ++i) {
    EXPECT_EQ(analysis.pacing[i], ref.pacing[i]) << label << " phi " << i;
  }
  ASSERT_EQ(analysis.pairs.size(), ref.capacities.size()) << label;
  for (std::size_t i = 0; i < ref.capacities.size(); ++i) {
    EXPECT_EQ(analysis.pairs[i].raw_tokens, ref.raw_tokens[i])
        << label << " pair " << i;
    EXPECT_EQ(analysis.pairs[i].delta_producer, ref.delta_producer[i])
        << label << " pair " << i;
    EXPECT_EQ(analysis.pairs[i].delta_consumer, ref.delta_consumer[i])
        << label << " pair " << i;
    EXPECT_EQ(analysis.pairs[i].capacity, ref.capacities[i])
        << label << " pair " << i;
  }
  EXPECT_EQ(analysis.total_capacity, ref.total_capacity) << label;
}

TEST(ChainRegression, FixedModelsMatchPreRefactorAlgorithm) {
  const models::Mp3Playback mp3 = models::make_mp3_playback();
  expect_matches_reference(mp3.graph, mp3.constraint, "mp3");
  const models::Fig1Vrdf fig1 = models::make_fig1_vrdf(kTau, kTau, kTau);
  expect_matches_reference(fig1.graph, fig1.constraint, "fig1");
  const models::SyntheticChain video = models::make_video_pipeline();
  expect_matches_reference(video.graph, video.constraint, "video");
  const models::SyntheticChain sensor = models::make_sensor_acquisition();
  expect_matches_reference(sensor.graph, sensor.constraint, "sensor");
}

TEST(ChainRegression, Mp3StillYieldsPublishedCapacities) {
  const models::Mp3Playback app = models::make_mp3_playback();
  const GraphAnalysis analysis =
      compute_buffer_capacities(app.graph, app.constraint);
  ASSERT_TRUE(analysis.admissible);
  EXPECT_TRUE(analysis.is_chain);
  ASSERT_EQ(analysis.pairs.size(), 3u);
  EXPECT_EQ(analysis.pairs[0].capacity,
            models::Mp3PaperNumbers::kVrdfCapacities[0]);  // 6015
  EXPECT_EQ(analysis.pairs[1].capacity,
            models::Mp3PaperNumbers::kVrdfCapacities[1]);  // 3263
  EXPECT_EQ(analysis.pairs[2].capacity,
            models::Mp3PaperNumbers::kVrdfCapacities[2]);  // 882
}

TEST(ChainRegression, RandomChainsMatchPreRefactorAlgorithm) {
  for (const bool source_constrained : {false, true}) {
    for (std::uint64_t seed = 1; seed <= 15; ++seed) {
      models::RandomChainSpec spec;
      spec.seed = seed;
      spec.length = 2 + seed % 6;
      spec.variable_percent = 60;
      spec.zero_percent = 25;
      spec.source_constrained = source_constrained;
      const models::SyntheticChain chain = models::make_random_chain(spec);
      expect_matches_reference(
          chain.graph, chain.constraint,
          "seed " + std::to_string(seed) +
              (source_constrained ? " source" : " sink"));
    }
  }
}

TEST(ChainRegression, ChainDiagnosticsKeepTheirWording) {
  // PR 5 lifted the ends-only restriction: an interior constraint on a
  // chain now paces instead of producing the old "must be on the chain's
  // source or sink" rejection.
  VrdfGraph g;
  const ActorId a = g.add_actor("a", kTau);
  const ActorId b = g.add_actor("b", kTau);
  const ActorId c = g.add_actor("c", kTau);
  (void)g.add_buffer(a, b, RateSet::singleton(1), RateSet::singleton(1));
  (void)g.add_buffer(b, c, RateSet::singleton(1), RateSet::singleton(1));
  const PacingResult interior = compute_pacing(g, ThroughputConstraint{b, kTau});
  EXPECT_TRUE(interior.ok);

  // Zero-quantum diagnostics keep the "chains" wording on chains.
  VrdfGraph h;
  const ActorId d = h.add_actor("d", kTau);
  const ActorId e = h.add_actor("e", kTau);
  (void)h.add_buffer(d, e, RateSet::of({0, 3}), RateSet::singleton(2));
  const PacingResult zero = compute_pacing(h, ThroughputConstraint{e, kTau});
  ASSERT_FALSE(zero.ok);
  EXPECT_NE(zero.diagnostics[0].find("sink-constrained chains"),
            std::string::npos);
}

}  // namespace
}  // namespace vrdf::analysis
