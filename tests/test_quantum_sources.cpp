// Tests for the quantum-source library and the response-time jitter
// failure injection (end-to-end monotonicity: worst-case-sized capacities
// must tolerate every early-finishing run).
#include <gtest/gtest.h>

#include "analysis/buffer_sizing.hpp"
#include "models/mp3.hpp"
#include "sim/quantum_source.hpp"
#include "sim/verify.hpp"
#include "util/error.hpp"

namespace vrdf::sim {
namespace {

using dataflow::RateSet;

std::vector<std::int64_t> draw(QuantumSource& source, std::int64_t count) {
  std::vector<std::int64_t> out;
  for (std::int64_t i = 0; i < count; ++i) {
    out.push_back(source.next(i));
  }
  return out;
}

TEST(QuantumSource, ConstantAndExtremes) {
  EXPECT_EQ(draw(*constant_source(5), 3), (std::vector<std::int64_t>{5, 5, 5}));
  const RateSet set = RateSet::of({2, 7, 9});
  EXPECT_EQ(draw(*always_min_source(set), 2), (std::vector<std::int64_t>{2, 2}));
  EXPECT_EQ(draw(*always_max_source(set), 2), (std::vector<std::int64_t>{9, 9}));
  EXPECT_THROW((void)constant_source(-1), ContractError);
}

TEST(QuantumSource, CyclicWrapsAround) {
  EXPECT_EQ(draw(*cyclic_source({1, 2, 3}), 7),
            (std::vector<std::int64_t>{1, 2, 3, 1, 2, 3, 1}));
  EXPECT_THROW((void)cyclic_source({}), ContractError);
}

TEST(QuantumSource, ScriptedPrefixThenTail) {
  EXPECT_EQ(draw(*scripted_source({9, 8}, 1), 5),
            (std::vector<std::int64_t>{9, 8, 1, 1, 1}));
}

TEST(QuantumSource, MinMaxAlternation) {
  const RateSet set = RateSet::interval(0, 4);
  EXPECT_EQ(draw(*min_max_alternating_source(set), 4),
            (std::vector<std::int64_t>{0, 4, 0, 4}));
}

TEST(QuantumSource, UniformStaysInSetAndCoversIt) {
  const RateSet set = RateSet::of({2, 3, 5});
  auto source = uniform_random_source(set, 11);
  std::set<std::int64_t> seen;
  for (const std::int64_t v : draw(*source, 200)) {
    EXPECT_TRUE(set.contains(v));
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);  // all members show up over 200 draws
}

TEST(QuantumSource, RandomWalkMovesByBoundedSteps) {
  const RateSet set = RateSet::interval(0, 100);
  auto source = random_walk_source(set, 3, 2);
  std::int64_t previous = source->next(0);
  for (std::int64_t i = 1; i < 300; ++i) {
    const std::int64_t v = source->next(i);
    EXPECT_TRUE(set.contains(v));
    EXPECT_LE(std::abs(v - previous), 2);
    previous = v;
  }
}

TEST(QuantumSource, ClonesReproduceTheStream) {
  const RateSet set = RateSet::interval(0, 960);
  for (const auto& make :
       {uniform_random_source(set, 77), random_walk_source(set, 78, 5),
        cyclic_source({1, 4, 2}), scripted_source({5, 5}, 2)}) {
    auto clone = make->clone();
    auto original_again = make->clone();
    EXPECT_EQ(draw(*clone, 100), draw(*original_again, 100))
        << make->describe();
  }
}

TEST(QuantumSource, DescribeIsInformative) {
  EXPECT_NE(constant_source(3)->describe().find("constant(3)"),
            std::string::npos);
  EXPECT_NE(uniform_random_source(RateSet::of({1, 2}), 5)->describe().find(
                "seed 5"),
            std::string::npos);
}

TEST(ResponseJitter, RejectsBadFractions) {
  const models::Mp3Playback app = models::make_mp3_playback();
  Simulator sim(app.graph);
  EXPECT_THROW(sim.set_response_time_jitter(app.br, 1, Rational(0)),
               ContractError);
  EXPECT_THROW(sim.set_response_time_jitter(app.br, 1, Rational(3, 2)),
               ContractError);
}

TEST(ResponseJitter, FiringsFinishWithinTheJitterWindow) {
  models::Mp3Playback app = models::make_mp3_playback();
  const analysis::GraphAnalysis sized =
      analysis::compute_buffer_capacities(app.graph, app.constraint);
  analysis::apply_capacities(app.graph, sized);
  Simulator sim(app.graph);
  sim.set_default_sources(1);
  sim.set_response_time_jitter(app.src, 5, Rational(1, 2));
  sim.record_firings(app.src, 512);
  StopCondition stop;
  stop.firing_target = StopCondition::FiringTarget{app.src, 200};
  (void)sim.run(stop);
  const Duration rho = app.graph.actor(app.src).response_time;
  bool saw_early = false;
  for (const FiringRecord& r : sim.firings(app.src)) {
    const Duration took = r.finish - r.start;
    EXPECT_LE(took, rho);
    EXPECT_GE(took, rho * Rational(1, 2));
    saw_early = saw_early || took < rho;
  }
  EXPECT_TRUE(saw_early);
}

class JitteredMp3 : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JitteredMp3, WorstCaseCapacitiesToleratEarlyFinishes) {
  // ρ(v) are worst-case response times; real runs finish earlier.  By
  // monotonicity the computed capacities must still sustain the periodic
  // DAC.  Jitter everything except the DAC itself (the constrained actor's
  // period is enforced, not its response time).
  models::Mp3Playback app = models::make_mp3_playback();
  const analysis::GraphAnalysis sized =
      analysis::compute_buffer_capacities(app.graph, app.constraint);
  analysis::apply_capacities(app.graph, sized);

  VerifyOptions options;
  options.observe_firings = 50000;
  const VerifyResult verdict = verify_throughput(
      app.graph, app.constraint,
      [&](Simulator& s) {
        s.set_response_time_jitter(app.br, GetParam(), Rational(1, 4));
        s.set_response_time_jitter(app.mp3, GetParam() + 1, Rational(1, 4));
        s.set_response_time_jitter(app.src, GetParam() + 2, Rational(1, 4));
      },
      options);
  EXPECT_TRUE(verdict.ok) << verdict.detail;
}

INSTANTIATE_TEST_SUITE_P(Seeds, JitteredMp3, ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace vrdf::sim
