// Interior throughput constraints (PR 5): a strictly periodic actor in
// the middle of the graph anchors its upstream cone like a sink and its
// downstream cone like a source.  Hand-checked capacities on the
// interior-pinned pipeline, the two-phase simulation harness, a random
// interior-pin sweep, min-period (plain and designated), the io
// surfaces, and the rejection diagnostics that *remain* once the old
// "is interior" rejection is gone.
#include <gtest/gtest.h>

#include "analysis/buffer_sizing.hpp"
#include "analysis/pacing.hpp"
#include "analysis/period.hpp"
#include "io/dot.hpp"
#include "io/report.hpp"
#include "io/text_format.hpp"
#include "models/synthetic.hpp"
#include "sim/fleet.hpp"
#include "sim/verify.hpp"
#include "util/error.hpp"

namespace vrdf::analysis {
namespace {

using dataflow::ActorId;
using dataflow::RateSet;
using dataflow::VrdfGraph;

// ------------------------------------------------ interior-pinned pipeline

TEST(Interior, PinnedPipelineHandComputedCapacities) {
  models::InteriorPinnedPipeline app = models::make_interior_pinned_pipeline();
  const GraphAnalysis sized =
      compute_buffer_capacities(app.graph, app.constraint);
  ASSERT_TRUE(sized.admissible)
      << (sized.diagnostics.empty() ? "" : sized.diagnostics[0]);
  ASSERT_EQ(sized.pairs.size(), 4u);
  EXPECT_TRUE(sized.is_chain);
  ASSERT_EQ(sized.constraint_is_sink_kind.size(), 1u);
  EXPECT_TRUE(sized.constraint_is_sink_kind[0]);
  EXPECT_TRUE(sized.constraint_is_source_kind[0]);

  // Gears 4/2/1/2/8 with τ = 5 ms: φ(source) 20 ms, φ(dec) 10 ms,
  // φ(dsp) = τ = 5 ms, φ(render) 10 ms, φ(sink) 40 ms.
  for (std::size_t i = 0; i < sized.actors_in_order.size(); ++i) {
    const std::string& name = app.graph.actor(sized.actors_in_order[i]).name;
    const Rational phi = sized.pacing[i].seconds();
    if (name == "source") {
      EXPECT_EQ(phi, Rational(1, 50));
    } else if (name == "dec" || name == "render") {
      EXPECT_EQ(phi, Rational(1, 100));
    } else if (name == "dsp") {
      EXPECT_EQ(phi, Rational(1, 200));
    } else {
      EXPECT_EQ(name, "sink");
      EXPECT_EQ(phi, Rational(1, 25));
    }
  }

  // Hand computation at tight response times ρ(v) = φ(v), every bound
  // rate s = 5 ms per token, in units of τ = 5 ms:
  //   ω(dsp) = 0 (the pin anchors both passes)
  //   pass A: ω(dec) = 2 + (0 + 1·(2−1))     = 3
  //           ω(source) = 4 + (3 + 1·(4−1))  = 10
  //   pass B: ω(render) = 0 + 1 + 1·(1−1)    = 1
  //           ω(sink)   = 1 + 2 + 1·(2−1)    = 4
  // Pair capacities (Δ_p = max(ω gap, ρ_p + s(π̂−1)), Δ_c = ρ_c + s(γ̂−1)):
  //   source→dec:  max(10−3, 4+3) + 2+1   → x = 10 → 11
  //   dec→dsp:     max(3−0, 2+1) + 1+0    → x = 4  → 4 (static at the pin: tight)
  //   dsp→render:  max(1−0, 1+0) + 2+3    → x = 6  → 7 (producer-paced)
  //   render→sink: max(4−1, 2+1) + 8+7    → x = 18 → 19 (producer-paced)
  for (const PairAnalysis& pair : sized.pairs) {
    const std::string name = app.graph.actor(pair.producer).name + "->" +
                             app.graph.actor(pair.consumer).name;
    if (name == "source->dec") {
      EXPECT_EQ(pair.capacity, 11) << name;
      EXPECT_EQ(pair.determined_by, ConstraintSide::Sink);
    } else if (name == "dec->dsp") {
      EXPECT_EQ(pair.capacity, 4) << name;
      EXPECT_EQ(pair.determined_by, ConstraintSide::Sink);
    } else if (name == "dsp->render") {
      EXPECT_EQ(pair.capacity, 7) << name;
      EXPECT_EQ(pair.determined_by, ConstraintSide::Source);
    } else {
      EXPECT_EQ(name, "render->sink");
      EXPECT_EQ(pair.capacity, 19) << name;
      EXPECT_EQ(pair.determined_by, ConstraintSide::Source);
    }
  }
  EXPECT_EQ(sized.total_capacity, 41);
}

TEST(Interior, PinnedPipelineSurvivesTwoPhaseSimulation) {
  models::InteriorPinnedPipeline app = models::make_interior_pinned_pipeline();
  const GraphAnalysis sized =
      compute_buffer_capacities(app.graph, app.constraint);
  ASSERT_TRUE(sized.admissible);
  apply_capacities(app.graph, sized);
  sim::VerifyOptions options;
  options.observe_firings = 2000;
  const sim::VerifyResult verdict =
      sim::verify_throughput(app.graph, app.constraint, {}, options);
  EXPECT_TRUE(verdict.ok) << verdict.detail;
  EXPECT_EQ(verdict.starvation_count, 0);
}

TEST(Interior, PinnedForkJoinThroughTheInteriorJoin) {
  // The pin may be a join/fork itself: src forks into two static
  // branches joined by the pinned mixer, which feeds a sink — the
  // upstream fork-join block paces like a sink-constrained DAG, the
  // downstream edge like a source-constrained chain.
  VrdfGraph bare;
  const Duration dummy = seconds(Rational(1));
  const ActorId src = bare.add_actor("src", dummy);
  const ActorId ba = bare.add_actor("ba", dummy);
  const ActorId bb = bare.add_actor("bb", dummy);
  const ActorId mix = bare.add_actor("mix", dummy);
  const ActorId out = bare.add_actor("out", dummy);
  // Gears src 2 / ba 1 / bb 4 / mix 2 / out 1 (φ(v) = g(v)·2 ms): both
  // branches demand φ(src) = 4 ms, the block is static, and the
  // downstream edge carries the source-mode zero-tolerant production.
  (void)bare.add_buffer(src, ba, RateSet::singleton(2), RateSet::singleton(1));
  (void)bare.add_buffer(src, bb, RateSet::singleton(2), RateSet::singleton(4));
  (void)bare.add_buffer(ba, mix, RateSet::singleton(1), RateSet::singleton(2));
  (void)bare.add_buffer(bb, mix, RateSet::singleton(4), RateSet::singleton(2));
  (void)bare.add_buffer(mix, out, RateSet::of({0, 2}), RateSet::singleton(1));
  const ThroughputConstraint pin{mix, milliseconds(Rational(4))};
  auto scaled = models::with_scaled_response_times(bare, pin, Rational(1));
  ASSERT_TRUE(scaled.has_value());
  VrdfGraph graph = std::move(*scaled);
  const GraphAnalysis sized = compute_buffer_capacities(graph, pin);
  ASSERT_TRUE(sized.admissible)
      << (sized.diagnostics.empty() ? "" : sized.diagnostics[0]);
  apply_capacities(graph, sized);
  sim::VerifyOptions options;
  options.observe_firings = 1000;
  const sim::VerifyResult verdict =
      sim::verify_throughput(graph, pin, {}, options);
  EXPECT_TRUE(verdict.ok) << verdict.detail;
  EXPECT_EQ(verdict.starvation_count, 0);
}

// ----------------------------------------------- random interior-pin sweep

TEST(Interior, RandomInteriorPinnedChainsSustainPeriodicExecution) {
  // The acceptance check, through the fleet harness (PR 8): 60 random
  // interior-pinned chains — up from 40 — pass the two-phase simulation
  // harness with zero phase-2 starvations.  The generator preserves the
  // PR 5 per-seed shape schedule.
  sim::SweepSpec spec;
  spec.classes = {models::ModelClass::InteriorPinned};
  spec.seeds_per_class = 60;
  spec.observe_firings = 400;
  spec.generator = [](const sim::FleetItem& item) {
    models::RandomInteriorPinSpec pin;
    pin.seed = item.seed_ordinal;
    pin.upstream_length = 1 + item.seed_ordinal % 3;
    pin.downstream_length = 1 + (item.seed_ordinal / 3) % 3;
    pin.variable_percent = 60;
    pin.zero_percent = 25;
    models::SyntheticChain generated = models::make_random_interior_pinned(pin);
    models::SyntheticModel model;
    model.graph = std::move(generated.graph);
    model.constraints = {generated.constraint};
    return model;
  };
  const sim::FleetReport report = sim::FleetSweep(spec).run(4);
  EXPECT_EQ(report.total_items, 60);
  EXPECT_EQ(report.passed, report.total_items) << sim::canonical_text(report);
  EXPECT_EQ(report.failed + report.rejected, 0);
  EXPECT_EQ(report.starvations, 0);
}

// ------------------------------------------------------ min-period solvers

TEST(Interior, MinPeriodOfThePinMatchesTightResponseTimes) {
  // At tight response times ρ(v) = φ(v) every response-time constraint
  // binds at exactly the construction period, so the fastest admissible
  // period with the installed capacities is τ itself.
  models::InteriorPinnedPipeline app = models::make_interior_pinned_pipeline();
  const GraphAnalysis sized =
      compute_buffer_capacities(app.graph, app.constraint);
  ASSERT_TRUE(sized.admissible);
  apply_capacities(app.graph, sized);
  const MinPeriodResult headroom =
      min_admissible_period(app.graph, app.dsp);
  ASSERT_TRUE(headroom.ok)
      << (headroom.diagnostics.empty() ? "" : headroom.diagnostics[0]);
  EXPECT_EQ(headroom.min_period, milliseconds(Rational(5)));
}

TEST(Interior, DesignatedMinPeriodCouplesThePinToAFixedSink) {
  // Chain src → pin → snk, static flow-balanced rates; with the sink
  // fixed at 8 ms, flow consistency pins the interior actor to exactly
  // 2 ms (gears 2/1/4).
  VrdfGraph bare;
  const Duration dummy = seconds(Rational(1));
  const ActorId src = bare.add_actor("src", dummy);
  const ActorId pin = bare.add_actor("pin", dummy);
  const ActorId snk = bare.add_actor("snk", dummy);
  (void)bare.add_buffer(src, pin, RateSet::singleton(2), RateSet::singleton(1));
  (void)bare.add_buffer(pin, snk, RateSet::singleton(1), RateSet::singleton(4));
  const ConstraintSet both = {
      ThroughputConstraint{pin, milliseconds(Rational(2))},
      ThroughputConstraint{snk, milliseconds(Rational(8))}};
  auto scaled = models::with_scaled_response_times(bare, both, Rational(1));
  ASSERT_TRUE(scaled.has_value());
  VrdfGraph graph = std::move(*scaled);
  const GraphAnalysis sized = compute_buffer_capacities(graph, both);
  ASSERT_TRUE(sized.admissible)
      << (sized.diagnostics.empty() ? "" : sized.diagnostics[0]);
  apply_capacities(graph, sized);
  const MinPeriodResult coupled = min_admissible_period(graph, both, pin);
  ASSERT_TRUE(coupled.ok)
      << (coupled.diagnostics.empty() ? "" : coupled.diagnostics[0]);
  EXPECT_EQ(coupled.min_period, milliseconds(Rational(2)));
  EXPECT_NE(coupled.binding_constraint.find("flow-coupling"),
            std::string::npos);

  // And the pinned pair survives phase-2 enforcement of both grids.
  const sim::VerifyResult verdict = sim::verify_throughput(graph, both);
  EXPECT_TRUE(verdict.ok) << verdict.detail;
}

// ------------------------------------------- surviving rejection diagnostics

TEST(Interior, ReconvergentVariableQuantaStillRejectedNamingTheBuffer) {
  // An interior pin on a reconvergent diamond with variable quanta on a
  // block-internal edge: the fork-join rule survives and names the
  // buffer and its rates; the old "is interior" message is gone.
  VrdfGraph g;
  const Duration tau = milliseconds(Rational(1));
  const ActorId src = g.add_actor("src", tau);
  const ActorId ba = g.add_actor("ba", tau);
  const ActorId bb = g.add_actor("bb", tau);
  const ActorId pin = g.add_actor("pin", tau);
  const ActorId out = g.add_actor("out", tau);
  (void)g.add_buffer(src, ba, RateSet::singleton(1), RateSet::of({0, 1}));
  (void)g.add_buffer(src, bb, RateSet::singleton(1), RateSet::singleton(1));
  (void)g.add_buffer(ba, pin, RateSet::singleton(1), RateSet::singleton(1));
  (void)g.add_buffer(bb, pin, RateSet::singleton(1), RateSet::singleton(1));
  (void)g.add_buffer(pin, out, RateSet::singleton(1), RateSet::singleton(1));
  const PacingResult rejected =
      compute_pacing(g, ThroughputConstraint{pin, milliseconds(Rational(1))});
  ASSERT_FALSE(rejected.ok);
  ASSERT_FALSE(rejected.diagnostics.empty());
  EXPECT_EQ(rejected.diagnostics[0].find("is interior"), std::string::npos)
      << rejected.diagnostics[0];
  EXPECT_NE(rejected.diagnostics[0].find("buffer src -> ba"),
            std::string::npos)
      << rejected.diagnostics[0];
  EXPECT_NE(rejected.diagnostics[0].find("reconvergent"), std::string::npos);
}

TEST(Interior, ActorBypassingThePinRejectedByName) {
  // src → pin → snk plus a side path src → side → snk that bypasses the
  // pin: `side` neither reaches the pin nor hangs off it, so it receives
  // no demand — rejected naming the actor, not "interior".
  VrdfGraph g;
  const Duration tau = milliseconds(Rational(1));
  const ActorId src = g.add_actor("src", tau);
  const ActorId pin = g.add_actor("pin", tau);
  const ActorId side = g.add_actor("side", tau);
  const ActorId snk = g.add_actor("snk", tau);
  (void)g.add_buffer(src, pin, RateSet::singleton(1), RateSet::singleton(1));
  (void)g.add_buffer(src, side, RateSet::singleton(1), RateSet::singleton(1));
  (void)g.add_buffer(pin, snk, RateSet::singleton(1), RateSet::singleton(1));
  (void)g.add_buffer(side, snk, RateSet::singleton(1), RateSet::singleton(1));
  const PacingResult rejected =
      compute_pacing(g, ThroughputConstraint{pin, tau});
  ASSERT_FALSE(rejected.ok);
  ASSERT_FALSE(rejected.diagnostics.empty());
  EXPECT_EQ(rejected.diagnostics[0].find("is interior"), std::string::npos)
      << rejected.diagnostics[0];
  EXPECT_NE(rejected.diagnostics[0].find("actor 'side'"), std::string::npos)
      << rejected.diagnostics[0];
  EXPECT_NE(rejected.diagnostics[0].find("no pacing demand"),
            std::string::npos);
}

TEST(Interior, VariableQuantaBetweenTwoPinsRejectedAsCoupled) {
  // Two pins in series: the segment between them is sandwiched between
  // two exact periodic grids, so a variable realized flow there could
  // back-pressure the upstream pin off its grid — the constraint-coupling
  // rule fires, naming the buffer and path semantics.
  VrdfGraph g;
  const Duration tau = milliseconds(Rational(1));
  const ActorId src = g.add_actor("src", tau);
  const ActorId p1 = g.add_actor("p1", tau);
  const ActorId mid = g.add_actor("mid", tau);
  const ActorId p2 = g.add_actor("p2", tau);
  const ActorId snk = g.add_actor("snk", tau);
  (void)g.add_buffer(src, p1, RateSet::singleton(1), RateSet::singleton(1));
  (void)g.add_buffer(p1, mid, RateSet::singleton(1), RateSet::of({0, 1}));
  (void)g.add_buffer(mid, p2, RateSet::singleton(1), RateSet::singleton(1));
  (void)g.add_buffer(p2, snk, RateSet::singleton(1), RateSet::singleton(1));
  const ConstraintSet pins = {ThroughputConstraint{p1, tau},
                              ThroughputConstraint{p2, tau}};
  const PacingResult rejected = compute_pacing(g, pins);
  ASSERT_FALSE(rejected.ok);
  ASSERT_FALSE(rejected.diagnostics.empty());
  EXPECT_NE(rejected.diagnostics[0].find("constraint-coupled"),
            std::string::npos)
      << rejected.diagnostics[0];
  EXPECT_NE(rejected.diagnostics[0].find("p1 -> mid"), std::string::npos);

  // With static rates the two exactly-periodic pins coexist and verify.
  VrdfGraph h;
  const ActorId s2 = h.add_actor("src", tau);
  const ActorId q1 = h.add_actor("p1", tau);
  const ActorId m2 = h.add_actor("mid", tau);
  const ActorId q2 = h.add_actor("p2", tau);
  const ActorId k2 = h.add_actor("snk", tau);
  (void)h.add_buffer(s2, q1, RateSet::singleton(1), RateSet::singleton(1));
  (void)h.add_buffer(q1, m2, RateSet::singleton(1), RateSet::singleton(1));
  (void)h.add_buffer(m2, q2, RateSet::singleton(1), RateSet::singleton(1));
  (void)h.add_buffer(q2, k2, RateSet::singleton(1), RateSet::singleton(1));
  const ConstraintSet static_pins = {ThroughputConstraint{q1, tau},
                                     ThroughputConstraint{q2, tau}};
  auto scaled = models::with_scaled_response_times(h, static_pins, Rational(1));
  ASSERT_TRUE(scaled.has_value());
  VrdfGraph graph = std::move(*scaled);
  const GraphAnalysis sized = compute_buffer_capacities(graph, static_pins);
  ASSERT_TRUE(sized.admissible)
      << (sized.diagnostics.empty() ? "" : sized.diagnostics[0]);
  apply_capacities(graph, sized);
  const sim::VerifyResult verdict = sim::verify_throughput(graph, static_pins);
  EXPECT_TRUE(verdict.ok) << verdict.detail;
  EXPECT_EQ(verdict.starvation_count, 0);
}

TEST(Interior, FlowInconsistentInteriorSeedRejectedWithPath) {
  // src → pin → snk with the pin seeded slower than the sink demands:
  // rejected as a seed violation naming both constraints and the path.
  VrdfGraph g;
  const Duration tau = milliseconds(Rational(1));
  const ActorId src = g.add_actor("src", tau);
  const ActorId pin = g.add_actor("pin", tau);
  const ActorId snk = g.add_actor("snk", tau);
  (void)g.add_buffer(src, pin, RateSet::singleton(1), RateSet::singleton(1));
  (void)g.add_buffer(pin, snk, RateSet::singleton(1), RateSet::singleton(1));
  const ConstraintSet skewed = {
      ThroughputConstraint{pin, milliseconds(Rational(2))},
      ThroughputConstraint{snk, milliseconds(Rational(1))}};
  const PacingResult rejected = compute_pacing(g, skewed);
  ASSERT_FALSE(rejected.ok);
  ASSERT_FALSE(rejected.diagnostics.empty());
  EXPECT_NE(rejected.diagnostics[0].find("'pin'"), std::string::npos)
      << rejected.diagnostics[0];
  EXPECT_NE(rejected.diagnostics[0].find("'snk'"), std::string::npos);
  EXPECT_NE(rejected.diagnostics[0].find("pin -> snk"), std::string::npos);
}

// ------------------------------------------------------------- io surfaces

TEST(Interior, ReportNamesTheInteriorPin) {
  models::InteriorPinnedPipeline app = models::make_interior_pinned_pipeline();
  const GraphAnalysis sized =
      compute_buffer_capacities(app.graph, app.constraint);
  ASSERT_TRUE(sized.admissible);
  apply_capacities(app.graph, sized);
  const std::string report =
      io::analysis_report(app.graph, app.constraint, sized);
  EXPECT_NE(report.find("interior-pinned chain"), std::string::npos) << report;
  EXPECT_NE(report.find("`dsp`"), std::string::npos);
  // The downstream (source-determined) pairs are marked producer-paced.
  EXPECT_NE(report.find("dsp->render (producer-paced)"), std::string::npos)
      << report;
  EXPECT_NE(report.find("render->sink (producer-paced)"), std::string::npos);
  EXPECT_NE(report.find("## Rate headroom"), std::string::npos);
}

TEST(Interior, DotDoubleBordersTheInteriorPin) {
  models::InteriorPinnedPipeline app = models::make_interior_pinned_pipeline();
  const GraphAnalysis sized =
      compute_buffer_capacities(app.graph, app.constraint);
  ASSERT_TRUE(sized.admissible);
  apply_capacities(app.graph, sized);
  const std::string dot =
      io::to_dot(app.graph, analysis::ConstraintSet{app.constraint}, sized);
  std::size_t borders = 0;
  for (std::size_t at = dot.find("peripheries=2"); at != std::string::npos;
       at = dot.find("peripheries=2", at + 1)) {
    ++borders;
  }
  EXPECT_EQ(borders, 1u) << dot;
  EXPECT_NE(dot.find("tau=1/200 s"), std::string::npos) << dot;
  EXPECT_EQ(dot.find("(!)"), std::string::npos);
}

TEST(Interior, TextFormatRoundTripsTheInteriorConstraint) {
  models::InteriorPinnedPipeline app = models::make_interior_pinned_pipeline();
  const GraphAnalysis sized =
      compute_buffer_capacities(app.graph, app.constraint);
  ASSERT_TRUE(sized.admissible);
  apply_capacities(app.graph, sized);
  const std::string text = io::write_chain(
      app.graph, analysis::ConstraintSet{app.constraint});
  EXPECT_NE(text.find("constraint dsp period=1/200"), std::string::npos)
      << text;
  const io::ChainDocument parsed = io::read_chain(text);
  ASSERT_EQ(parsed.constraints.size(), 1u);
  const GraphAnalysis reparsed =
      compute_buffer_capacities(parsed.graph, parsed.constraints);
  ASSERT_TRUE(reparsed.admissible);
  EXPECT_EQ(reparsed.total_capacity, sized.total_capacity);
  EXPECT_EQ(io::write_chain(parsed.graph, parsed.constraints), text);
}

}  // namespace
}  // namespace vrdf::analysis
